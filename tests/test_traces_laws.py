"""Algebraic laws of the trace model, property-tested with hypothesis:
monoid laws of concatenation, partial-order laws of the prefix relation,
residual uniqueness, and the keyed U/O types' agreement with the general
machinery."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.items import Item, kv_item, marker
from repro.traces.normal_form import lex_normal_form, random_equivalent_shuffle
from repro.traces.trace import DataTrace, empty_trace
from repro.traces.trace_type import ordered_type, unordered_type

from conftest import example31_sequences

U = unordered_type()
O = ordered_type()


def renumber_markers(items):
    """Renumber marker timestamps 1.. to keep concatenations well-formed."""
    out, ts = [], 1
    for item in items:
        if item.is_marker():
            out.append(marker(ts))
            ts += 1
        else:
            out.append(item)
    return out


@st.composite
def keyed_item_sequences(draw, max_len=8):
    items = []
    ts = 1
    for _ in range(draw(st.integers(0, max_len))):
        if draw(st.booleans()):
            items.append(
                kv_item(draw(st.sampled_from("ab")), draw(st.integers(0, 4)))
            )
        else:
            items.append(marker(ts))
            ts += 1
    return items


class TestMonoidLaws:
    @given(example31_sequences(max_len=5), example31_sequences(max_len=5),
           example31_sequences(max_len=5))
    @settings(max_examples=30)
    def test_concat_associative(self, example31_type, u, v, w):
        u, v, w = (renumber_markers(x) for x in (u, v, w))
        a = DataTrace(example31_type, u)
        b = DataTrace(example31_type, v)
        c = DataTrace(example31_type, w)
        assert (a + b) + c == a + (b + c)

    @given(example31_sequences())
    @settings(max_examples=30)
    def test_identity_laws(self, example31_type, items):
        t = DataTrace(example31_type, items)
        e = empty_trace(example31_type)
        assert t + e == t
        assert e + t == t

    @given(keyed_item_sequences(), keyed_item_sequences())
    @settings(max_examples=30)
    def test_concat_well_defined_on_keyed_types(self, u, v):
        """[u][v] must not depend on the representatives, for U and O."""
        rng = random.Random(2)
        for trace_type in (U, O):
            u2 = random_equivalent_shuffle(trace_type, u, rng)
            v2 = random_equivalent_shuffle(trace_type, v, rng)
            left = DataTrace(trace_type, renumber_markers(list(u) + list(v)))
            right = DataTrace(trace_type, renumber_markers(list(u2) + list(v2)))
            assert left == right


class TestPrefixOrderLaws:
    @given(example31_sequences())
    @settings(max_examples=30)
    def test_reflexive(self, example31_type, items):
        t = DataTrace(example31_type, items)
        assert t.is_prefix_of(t)

    @given(example31_sequences(max_len=6), example31_sequences(max_len=4))
    @settings(max_examples=30)
    def test_concat_extends(self, example31_type, u, v):
        u, v = renumber_markers(u), renumber_markers(v)
        # Renumber v's markers to continue after u's.
        n_markers = sum(1 for i in u if i.is_marker())
        v = [marker(i.value + n_markers) if i.is_marker() else i for i in v]
        a = DataTrace(example31_type, u)
        ab = DataTrace(example31_type, list(u) + list(v))
        assert a.is_prefix_of(ab)

    @given(example31_sequences(max_len=6), example31_sequences(max_len=6))
    @settings(max_examples=40)
    def test_antisymmetric(self, example31_type, u, v):
        a = DataTrace(example31_type, u)
        b = DataTrace(example31_type, v)
        if a.is_prefix_of(b) and b.is_prefix_of(a):
            assert a == b

    @given(example31_sequences(max_len=8))
    @settings(max_examples=30)
    def test_transitive_via_cuts(self, example31_type, items):
        third = len(items) // 3
        a = DataTrace(example31_type, items[:third])
        b = DataTrace(example31_type, items[: 2 * third])
        c = DataTrace(example31_type, items)
        assert a.is_prefix_of(b)
        assert b.is_prefix_of(c)
        assert a.is_prefix_of(c)


class TestResidualLaws:
    @given(example31_sequences(max_len=8))
    @settings(max_examples=40)
    def test_residual_reconstructs(self, example31_type, items):
        cut = len(items) // 2
        prefix = DataTrace(example31_type, items[:cut])
        full = DataTrace(example31_type, items)
        residual = prefix.residual_in(full)
        assert residual is not None
        assert prefix + residual == full

    @given(example31_sequences(max_len=8))
    @settings(max_examples=40)
    def test_residual_unique(self, example31_type, items):
        """Traces are left-cancellative: u.w = u.w' implies w = w'."""
        cut = len(items) // 2
        prefix = DataTrace(example31_type, items[:cut])
        full = DataTrace(example31_type, items)
        residual = prefix.residual_in(full)
        # Direct construction of the residual from the raw suffix must
        # agree with the greedy residuation.
        direct = DataTrace(example31_type, items[cut:])
        assert residual == direct


class TestKeyedNormalForms:
    @given(keyed_item_sequences())
    @settings(max_examples=40)
    def test_lex_normal_form_idempotent_on_keyed(self, items):
        for trace_type in (U, O):
            nf = lex_normal_form(trace_type, items)
            assert lex_normal_form(trace_type, list(nf)) == nf

    @given(keyed_item_sequences())
    @settings(max_examples=40)
    def test_o_refines_u(self, items):
        """O-equivalent sequences are U-equivalent (O has more
        dependencies, hence finer classes)."""
        rng = random.Random(5)
        shuffled = random_equivalent_shuffle(O, items, rng)
        assert lex_normal_form(U, items) == lex_normal_form(U, shuffled)
