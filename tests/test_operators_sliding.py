"""The specialized sliding-window template and its window algorithms
(the conclusion's proposed template extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.base import KV, Marker
from repro.operators.library import sliding_count
from repro.operators.sliding import OpSlidingWindow, sliding_max, sliding_window
from repro.operators.window_algorithms import (
    RecomputeAggregator,
    TwoStacksAggregator,
    make_aggregator,
)
from repro.traces.blocks import BlockTrace

from conftest import event_streams, shuffle_within_blocks


class TestWindowAlgorithms:
    @pytest.mark.parametrize("algorithm", ["two-stacks", "recompute"])
    def test_basic_fifo_aggregation(self, algorithm):
        agg = make_aggregator(0, lambda a, b: a + b, algorithm)
        for v in (1, 2, 3):
            agg.insert(v)
        assert agg.query() == 6
        assert agg.evict() == 1
        assert agg.query() == 5
        assert len(agg) == 2

    def test_two_stacks_empty_query(self):
        agg = TwoStacksAggregator(0, lambda a, b: a + b)
        assert agg.query() == 0

    def test_two_stacks_evict_empty_raises(self):
        agg = TwoStacksAggregator(0, lambda a, b: a + b)
        with pytest.raises(IndexError):
            agg.evict()

    def test_non_invertible_monoid_max(self):
        agg = TwoStacksAggregator(float("-inf"), max)
        for v in (5, 9, 3):
            agg.insert(v)
        assert agg.query() == 9
        agg.evict()  # 5
        assert agg.query() == 9
        agg.evict()  # 9
        assert agg.query() == 3

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            make_aggregator(0, lambda a, b: a + b, "magic")

    @given(st.lists(st.sampled_from("IIIEQ"), min_size=1, max_size=200),
           st.data())
    @settings(max_examples=50)
    def test_two_stacks_equals_recompute_oracle(self, ops, data):
        """Random op sequences over a NON-commutative monoid (string
        concatenation) — window order must be preserved exactly."""
        two = TwoStacksAggregator("", lambda a, b: a + b)
        ref = RecomputeAggregator("", lambda a, b: a + b)
        counter = 0
        for op in ops:
            if op == "I":
                value = chr(97 + counter % 26)
                counter += 1
                two.insert(value)
                ref.insert(value)
            elif op == "E" and len(ref):
                assert two.evict() == ref.evict()
            assert two.query() == ref.query()
            assert len(two) == len(ref)


class TestSlidingWindowTemplate:
    def test_sliding_sum(self):
        op = sliding_window(
            2, inject=lambda k, v: v, identity_elem=0,
            combine_fn=lambda a, b: a + b,
        )
        out = op.run([
            KV("a", 1), Marker(1), KV("a", 10), Marker(2), Marker(3), Marker(4),
        ])
        assert [e for e in out if isinstance(e, KV)] == [
            KV("a", 1), KV("a", 11), KV("a", 10),
        ]

    def test_matches_library_sliding_count(self):
        """The specialized template must agree with the OpKeyedUnordered
        formulation on counting."""
        events = [
            KV("a", 1), KV("b", 2), Marker(1), KV("a", 3), Marker(2),
            KV("b", 4), KV("b", 5), Marker(3), Marker(4),
        ]
        specialized = sliding_window(
            3, inject=lambda k, v: 1, identity_elem=0,
            combine_fn=lambda a, b: a + b,
        )
        library_form = sliding_count(3)
        left = BlockTrace.from_events(False, specialized.run(events))
        right = BlockTrace.from_events(False, library_form.run(events))
        assert left == right

    def test_sliding_max_non_invertible(self):
        op = sliding_max(2)
        out = op.run([
            KV("a", 9), Marker(1), KV("a", 1), Marker(2), Marker(3),
        ])
        assert [e for e in out if isinstance(e, KV)] == [
            KV("a", 9), KV("a", 9), KV("a", 1),
        ]

    def test_algorithms_agree(self):
        events = [KV("k", i % 7) for i in range(30)]
        stream = []
        for i, e in enumerate(events):
            stream.append(e)
            if i % 5 == 4:
                stream.append(Marker(i // 5 + 1))
        for window in (1, 2, 4):
            fast = sliding_window(
                window, lambda k, v: v, 0, lambda a, b: a + b,
                algorithm="two-stacks",
            )
            slow = sliding_window(
                window, lambda k, v: v, 0, lambda a, b: a + b,
                algorithm="recompute",
            )
            assert BlockTrace.from_events(False, fast.run(stream)) == \
                BlockTrace.from_events(False, slow.run(stream))

    def test_finish_hook(self):
        op = sliding_window(
            1, lambda k, v: v, 0, lambda a, b: a + b,
            finish=lambda key, agg, ts: (agg, ts),
        )
        out = op.run([KV("a", 5), Marker(7)])
        assert [e for e in out if isinstance(e, KV)] == [KV("a", (5, 7))]

    def test_invalid_window(self):
        op = sliding_window(0, lambda k, v: v, 0, lambda a, b: a + b)
        with pytest.raises(ValueError):
            op.initial_state()

    def test_type_kinds(self):
        assert OpSlidingWindow.input_kind == "U"
        assert OpSlidingWindow.output_kind == "U"

    @given(event_streams())
    @settings(max_examples=40)
    def test_consistency_under_block_shuffles(self, events):
        """Theorem 4.2 extended to the new template: equivalent inputs
        (block-wise shuffles) give equivalent outputs."""
        rng = random.Random(41)
        op = sliding_window(2, lambda k, v: v, 0, lambda a, b: a + b)
        base = BlockTrace.from_events(False, op.run(events))
        for _ in range(5):
            shuffled = shuffle_within_blocks(events, rng)
            assert BlockTrace.from_events(False, op.run(shuffled)) == base
