"""Data-string transductions: step/lift duality, the Section 3 worked
examples, and the composition combinators."""

import pytest

from repro.traces.items import Item, marker
from repro.traces.tags import Tag
from repro.transductions.combinators import compose, parallel
from repro.transductions.examples import (
    DeterministicMerge,
    KeyPartition,
    RunningMaxFilter,
    StreamingMax,
)
from repro.transductions.string_transduction import (
    FunctionTransduction,
    StringTransduction,
    lift,
)

from conftest import M, measurements


class Doubler(StringTransduction):
    """Test operator: emit each number twice."""

    def step(self, state, item):
        return (item, item)


class TestStringTransduction:
    def test_run_is_lift(self):
        f = RunningMaxFilter()
        assert f.run([3, 1, 5, 2]) == [3, 5]
        assert lift(f)([3, 1, 5, 2]) == [3, 5]

    def test_example_34_table(self):
        """The f / lift(f) table of Example 3.4."""
        f = RunningMaxFilter()
        assert f.on_prefix(()) == []
        assert f.on_prefix((3,)) == [3]
        assert f.on_prefix((3, 1)) == []
        assert f.on_prefix((3, 1, 5)) == [5]
        assert f.on_prefix((3, 1, 5, 2)) == []
        assert f.cumulative((3, 1, 5, 2)) == [3, 5]

    def test_increments_structure(self):
        f = RunningMaxFilter()
        increments = f.increments([3, 1, 5])
        assert increments == [(None, []), (3, [3]), (1, []), (5, [5])]

    def test_lift_is_monotone(self):
        f = RunningMaxFilter()
        items = [3, 1, 5, 2, 9, 4]
        for cut in range(len(items)):
            shorter = f.cumulative(items[:cut])
            longer = f.cumulative(items[: cut + 1])
            assert longer[: len(shorter)] == shorter

    def test_function_transduction_matches_example_34(self):
        def f(prefix):
            if not prefix:
                return ()
            last = prefix[-1]
            if all(last > a for a in prefix[:-1]):
                return (last,)
            return ()

        spec = FunctionTransduction(f)
        impl = RunningMaxFilter()
        for items in ([], [3], [3, 1, 5, 2], [1, 2, 3], [5, 5]):
            assert spec.run(items) == impl.run(items)

    def test_function_transduction_f_eps(self):
        spec = FunctionTransduction(lambda prefix: ("start",) if not prefix else ())
        assert spec.run([]) == ["start"]
        assert spec.run([1]) == ["start"]


class TestDeterministicMerge:
    def test_cyclic_reading(self):
        m = DeterministicMerge()
        left, right = Tag(0), Tag(1)
        items = [Item(left, "x1"), Item(left, "x2"), Item(right, "y1")]
        # merge(x1 x2, y1) = x1 y1 x2 (the m > n case of Example 3.7).
        assert m.run(items) == ["x1", "y1", "x2"]

    def test_matches_specification(self):
        m = DeterministicMerge()
        left, right = Tag(0), Tag(1)
        xs, ys = ["a", "b", "c"], ["1", "2"]
        items = [Item(left, x) for x in xs] + [Item(right, y) for y in ys]
        assert tuple(m.run(items)) == DeterministicMerge.specification(xs, ys)

    def test_specification_shapes(self):
        assert DeterministicMerge.specification("ab", "xy") == ("a", "x", "b", "y")
        assert DeterministicMerge.specification("abc", "x") == ("a", "x", "b")
        assert DeterministicMerge.specification("", "xyz") == ()

    def test_channel_order_independence(self):
        """Interleaving of the two input channels must not matter."""
        m = DeterministicMerge()
        left, right = Tag(0), Tag(1)
        a = [Item(left, 1), Item(right, 10), Item(left, 2), Item(right, 20)]
        b = [Item(right, 10), Item(right, 20), Item(left, 1), Item(left, 2)]
        assert m.run(a) == m.run(b)

    def test_unknown_tag_rejected(self):
        m = DeterministicMerge()
        with pytest.raises(ValueError):
            m.run([Item(Tag(7), "x")])


class TestKeyPartition:
    def test_partition_output_items(self):
        p = KeyPartition(key=lambda x: x % 2)
        out = p.run([4, 7, 8])
        assert out == [Item(Tag(0), 4), Item(Tag(1), 7), Item(Tag(0), 8)]

    def test_matches_specification(self):
        items = [3, 1, 4, 1, 5, 9, 2, 6]
        key = lambda x: x % 3
        spec = KeyPartition.specification(items, key)
        out = KeyPartition(key).run(items)
        for k in spec:
            assert [i.value for i in out if i.tag == Tag(k)] == spec[k]


class TestStreamingMax:
    def test_example_39(self, example31_type):
        sm = StreamingMax()
        items = (
            measurements(5, 3, ts=1) + measurements(9, ts=2) + [marker(3)]
        )
        assert sm.run(items) == [5, 9, 9]

    def test_empty_first_bag_emits_nothing(self):
        sm = StreamingMax()
        assert sm.run([marker(1)]) == []

    def test_matches_specification(self):
        assert StreamingMax.specification([[5, 3], [9], [], []]) == (5, 9, 9)
        assert StreamingMax.specification([[1]]) == ()


class TestCombinators:
    def test_compose_streams_increments(self):
        pipeline = compose(Doubler(), RunningMaxFilter())
        # doubled: 3 3 1 1 5 5 -> running max filter: 3 5
        assert pipeline.run([3, 1, 5]) == [3, 5]

    def test_compose_single(self):
        assert compose(Doubler()).run([1]) == [1, 1]

    def test_compose_empty_rejected(self):
        with pytest.raises(ValueError):
            compose()

    def test_compose_associativity(self):
        a = compose(compose(Doubler(), Doubler()), RunningMaxFilter())
        b = compose(Doubler(), compose(Doubler(), RunningMaxFilter()))
        items = [2, 1, 3]
        assert a.run(items) == b.run(items)

    def test_parallel_routing(self):
        evens = RunningMaxFilter()
        odds = RunningMaxFilter()
        par = parallel(evens, odds, route_left=lambda x: x % 2 == 0)
        out = par.run([2, 1, 4, 3, 0, 9])
        assert out == [2, 1, 4, 3, 9]
