"""Online invariant monitors: edge-level conformance checks, progress
tracking, fault injection through the simulator, and — as for the rest
of the obs layer — parity: a monitored run must be bit-identical to a
plain run.
"""

import math

import pytest

from repro.apps.iot import SensorWorkload, iot_typed_dag
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.obs import MonitorConfig, MonitorHub, ObsContext
from repro.obs.export import prometheus_text
from repro.obs.monitor import (
    DUPLICATE_MARKER,
    EPOCH_MISMATCH,
    OUT_OF_EPOCH_MARKER,
    PER_KEY_ORDER,
    POST_MARKER_STRAGGLER,
    default_order_token,
)
from repro.obs.schema import validate_records
from repro.operators.base import KV, Marker
from repro.storm.cluster import Cluster
from repro.storm.local import LocalRunner
from repro.storm.simulator import Simulator
from repro.storm.topology import CaptureBolt, IteratorSpout, TopologyBuilder


def _compiled_iot():
    events = SensorWorkload().events()
    dag = iot_typed_dag(parallelism=2)
    return compile_dag(dag, {"SENSOR": source_from_events(events, 2)})


def _value_order(kv):
    return kv.value


# ----------------------------------------------------------------------
# EdgeMonitor unit behaviour (hand-fed, no simulator).
# ----------------------------------------------------------------------


class TestDefaultOrderToken:
    def test_trailing_numeric_of_tuple(self):
        assert default_order_token((3.5, 17)) == 17
        assert default_order_token([1, 2, 9.5]) == 9.5

    def test_non_idiom_shapes_yield_none(self):
        assert default_order_token(7) is None  # bare number: ambiguous
        assert default_order_token("abc") is None
        assert default_order_token(()) is None
        assert default_order_token((1, "x")) is None
        assert default_order_token((1, True)) is None  # bool is not a ts


class TestEdgeMonitor:
    def _hub(self, kind="O", **config):
        config.setdefault("order_key", _value_order)
        hub = MonitorHub(MonitorConfig(**config))
        monitor = hub.attach_edge("up", "down", kind=kind)
        return hub, monitor

    def test_one_violation_per_out_of_order_item(self):
        hub, monitor = self._hub()
        # 15 regresses below 20, and 25 below 30: exactly those two items
        # are bad; 40 recovers without a violation.
        for token in [10, 20, 15, 30, 25, 40]:
            monitor.observe(0, 0, KV("k", token), 0.0)
        assert hub.violation_counts == {PER_KEY_ORDER: 2}
        bad = [v.item for v in hub.violations]
        assert bad == [repr(KV("k", 15)), repr(KV("k", 25))]
        assert all(v.edge == "up->down" for v in hub.violations)

    def test_keys_are_ordered_independently(self):
        hub, monitor = self._hub()
        for event in [KV("a", 1), KV("b", 9), KV("a", 2), KV("b", 10)]:
            monitor.observe(0, 0, event, 0.0)
        assert hub.violation_count() == 0

    def test_marker_resets_per_key_order(self):
        hub, monitor = self._hub()
        monitor.observe(0, 0, KV("k", 9), 0.0)
        monitor.observe(0, 0, Marker(1), 0.0)
        monitor.observe(0, 0, KV("k", 1), 0.0)  # new block: 1 after 9 is fine
        assert hub.violation_count() == 0

    def test_order_check_requires_explicit_order_key(self):
        # Arrival order IS the trace order unless the stream declares one.
        hub = MonitorHub(MonitorConfig())
        monitor = hub.attach_edge("up", "down", kind="O")
        for token in [10, 5, 1]:
            monitor.observe(0, 0, KV("k", token), 0.0)
        assert hub.violation_count() == 0

    def test_u_edge_has_no_order_check(self):
        hub, monitor = self._hub(kind="U")
        for token in [10, 5, 1]:
            monitor.observe(0, 0, KV("k", token), 0.0)
        assert hub.violation_count() == 0

    def test_none_token_items_are_skipped(self):
        hub, monitor = self._hub(
            order_key=lambda kv: default_order_token(kv.value)
        )
        monitor.observe(0, 0, KV("k", (1, 20)), 0.0)
        monitor.observe(0, 0, KV("k", "opaque"), 0.0)  # no token: skipped
        monitor.observe(0, 0, KV("k", (2, 10)), 0.0)  # 10 < 20: violation
        assert hub.violation_counts == {PER_KEY_ORDER: 1}

    def test_duplicate_marker(self):
        hub, monitor = self._hub()
        monitor.observe(0, 0, Marker(1), 0.0)
        monitor.observe(0, 0, Marker(1), 1.0)
        assert hub.violation_counts == {DUPLICATE_MARKER: 1}

    def test_marker_regression(self):
        hub, monitor = self._hub()
        monitor.observe(0, 0, Marker(2), 0.0)
        monitor.observe(0, 0, Marker(1), 1.0)
        assert hub.violation_counts == {OUT_OF_EPOCH_MARKER: 1}

    def test_epoch_mismatch_across_channels(self):
        hub, monitor = self._hub()
        monitor.observe(0, 0, Marker(1), 0.0)  # channel 0 establishes epoch 1
        monitor.observe(0, 1, Marker(2), 1.0)  # channel 1 disagrees
        assert hub.violation_counts == {EPOCH_MISMATCH: 1}

    def test_post_marker_straggler(self):
        hub, monitor = self._hub(epoch_of=lambda kv: kv.value[0])
        monitor.observe(0, 0, KV("k", (1, 5)), 0.0)
        monitor.observe(0, 0, Marker(1), 1.0)
        monitor.observe(0, 0, KV("k", (1, 6)), 2.0)  # epoch 1 after Marker(1)
        assert hub.violation_counts[POST_MARKER_STRAGGLER] == 1

    def test_nth_sampling_skips_items_but_not_markers(self):
        hub, monitor = self._hub(sampling="nth", nth=2)
        # Only every 2nd item per channel is checked; both bad items land
        # on unsampled positions here, markers are still fully checked.
        for token in [10, 5, 8, 1]:
            monitor.observe(0, 0, KV("k", token), 0.0)
        monitor.observe(0, 0, Marker(1), 0.0)
        monitor.observe(0, 0, Marker(1), 1.0)
        assert PER_KEY_ORDER not in hub.violation_counts or (
            hub.violation_counts[PER_KEY_ORDER] <= 1
        )
        assert hub.violation_counts[DUPLICATE_MARKER] == 1

    def test_epoch_sampling_keeps_digests_only(self):
        hub, monitor = self._hub(sampling="epoch")
        for token in [10, 5, 1]:
            monitor.observe(0, 0, KV("k", token), 0.0)
        assert hub.violation_count() == 0  # no per-item checks at all
        (state,) = monitor.channel_states().values()
        assert state.block_items == 3
        assert state.block_digest != 0
        monitor.observe(0, 0, Marker(1), 0.0)
        (state,) = monitor.channel_states().values()
        assert state.block_items == 0  # marker sealed the block

    def test_violation_cap(self):
        hub, monitor = self._hub(max_violations=2)
        for token in [10, 9, 8, 7, 6]:
            monitor.observe(0, 0, KV("k", token), 0.0)
        assert len(hub.violations) == 2
        assert hub.dropped_violations == 2
        assert hub.violation_counts[PER_KEY_ORDER] == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(sampling="sometimes")
        with pytest.raises(ValueError):
            MonitorConfig(nth=0)
        with pytest.raises(ValueError):
            MonitorHub(MonitorConfig()).attach_edge("a", "b", kind="X")

    def test_violation_str_names_edge_epoch_and_item(self):
        hub, monitor = self._hub()
        monitor.observe(0, 0, Marker(1), 0.0)
        monitor.observe(0, 0, KV("k", 9), 1.0)
        monitor.observe(0, 0, KV("k", 3), 2.0)
        (violation,) = hub.violations
        text = str(violation)
        assert "per-key-order" in text
        assert "up->down" in text
        assert "epoch 1" in text
        assert repr(KV("k", 3)) in text


# ----------------------------------------------------------------------
# Hub construction and progress monitors.
# ----------------------------------------------------------------------


class TestMonitorHub:
    def test_for_compiled_uses_typed_edge_kinds(self):
        compiled = _compiled_iot()
        hub = MonitorHub.for_compiled(compiled)
        kinds = {edge: m.kind for edge, m in hub.edges.items()}
        assert kinds == compiled.edge_kinds
        assert kinds[("SORT;LI", "Avg")] == "O"  # the sorted edge
        assert kinds[("SENSOR", "Map")] == "U"

    def test_for_topology_monitors_every_edge_as_u(self):
        events = [KV("k", 1), Marker(1)]
        builder = TopologyBuilder("t")
        builder.set_spout("src", IteratorSpout(lambda i, n: iter(events)), 1)
        builder.set_bolt("sink", CaptureBolt(), 1).shuffle_grouping("src")
        hub = MonitorHub.for_topology(builder.build())
        assert set(hub.edges) == {("src", "sink")}
        assert hub.edges[("src", "sink")].kind == "U"

    def test_watermark_lag_against_frontier(self):
        hub = MonitorHub()
        hub.on_source_marker("src", 1, 0.0)
        hub.on_source_marker("src", 2, 1.0)
        hub.on_source_marker("src", 3, 2.0)
        hub.on_epoch_sealed("op", 0, 1, 2.5)
        assert hub.frontier_epoch() == 3
        assert hub.watermark_lag("op", 0) == 2
        assert hub.max_watermark_lag() == (2, "op[0]")
        hub.on_epoch_sealed("op", 0, 3, 3.0)
        assert hub.watermark_lag("op", 0) == 0

    def test_watermark_lag_alert_fires_once(self):
        hub = MonitorHub(MonitorConfig(watermark_lag_alert=2))
        for epoch in [1, 2, 3, 4]:
            hub.on_source_marker("src", epoch, float(epoch))
        hub.on_epoch_sealed("op", 0, 1, 5.0)  # lag 3 >= 2: alert
        hub.on_epoch_sealed("op", 0, 2, 6.0)  # still lagging: no re-alert
        assert [a.kind for a in hub.alerts] == ["watermark-lag"]

    def test_queue_depth_alert_rearms_below_threshold(self):
        hub = MonitorHub(MonitorConfig(queue_depth_alert=3))
        for depth in [1, 3, 4, 1, 5]:
            hub.on_queue_depth("op", 0, 0.0, depth)
        # Crossings at 3 and (after dropping to 1) at 5: two alerts.
        assert [a.kind for a in hub.alerts] == ["queue-depth", "queue-depth"]

    def test_queue_growth_alert(self):
        hub = MonitorHub(MonitorConfig(
            queue_depth_alert=1000, queue_growth_window=4,
        ))
        for depth in [1, 2, 3, 4]:
            hub.on_queue_depth("op", 0, 0.0, depth)
        assert [a.kind for a in hub.alerts] == ["queue-growth"]

    def test_telemetry_snapshot_per_source_epoch(self):
        hub = MonitorHub()
        hub.on_source_marker("src", 1, 0.0)
        hub.on_source_marker("src", 1, 0.5)  # other spout task: no new row
        hub.on_source_marker("src", 2, 1.0)
        hub.close(2.0)
        rows = [r for r in hub.telemetry_records() if r["type"] == "telemetry"]
        assert len(rows) == 3
        assert [r["seq"] for r in rows] == [0, 1, 2]
        assert rows[-1]["final"] is True

    def test_summary_rolls_up(self):
        hub = MonitorHub(MonitorConfig(order_key=_value_order))
        monitor = hub.attach_edge("a", "b", kind="O")
        monitor.observe(0, 0, KV("k", 2), 0.0)
        monitor.observe(0, 0, KV("k", 1), 0.0)
        summary = hub.summary()
        assert summary["edges_monitored"] == 1
        assert summary["violations_total"] == 1
        assert summary["violations_by_kind"] == {PER_KEY_ORDER: 1}
        assert summary["items_observed"] == 2


# ----------------------------------------------------------------------
# Fault injection through the simulator.
# ----------------------------------------------------------------------


def _run_monitored(events, hub, seed=0):
    builder = TopologyBuilder("t")
    builder.set_spout("src", IteratorSpout(lambda i, n: iter(events)), 1)
    builder.set_bolt("sink", CaptureBolt(), 1).shuffle_grouping("src")
    topology = builder.build()
    obs = ObsContext.monitoring(hub)
    return Simulator(topology, Cluster(2), seed=seed, obs=obs).run()


class TestFaultInjection:
    def test_order_violating_stream_one_violation_per_bad_item(self):
        # Values follow the (payload, timestamp) idiom; items 2 and 4 put
        # their timestamps backwards within the block.
        events = [
            KV("k", ("a", 10)),
            KV("k", ("b", 20)),
            KV("k", ("c", 15)),  # bad
            KV("k", ("d", 30)),
            KV("k", ("e", 25)),  # bad
            Marker(1),
            KV("k", ("f", 5)),   # fresh block: not a violation
        ]
        hub = MonitorHub(MonitorConfig(
            order_key=lambda kv: default_order_token(kv.value)
        ))
        hub.attach_edge("src", "sink", kind="O")
        _run_monitored(events, hub)
        assert hub.violation_counts == {PER_KEY_ORDER: 2}
        assert [v.item for v in hub.violations] == [
            repr(KV("k", ("c", 15))), repr(KV("k", ("e", 25))),
        ]
        for violation in hub.violations:
            assert violation.edge == "src->sink"
            assert violation.component == "sink"
            assert violation.channel == "src[0]"

    def test_duplicate_marker_injection(self):
        events = [KV("k", 1), Marker(1), KV("k", 2), Marker(1)]
        hub = MonitorHub()
        hub.attach_edge("src", "sink", kind="U")
        _run_monitored(events, hub)
        assert hub.violation_counts == {DUPLICATE_MARKER: 1}
        (violation,) = hub.violations
        assert violation.epoch == 1

    def test_clean_compiled_run_has_zero_violations(self):
        compiled = _compiled_iot()
        hub = MonitorHub.for_compiled(compiled, MonitorConfig(
            order_key=lambda kv: default_order_token(kv.value)
        ))
        obs = ObsContext.monitoring(hub)
        LocalRunner(compiled.topology, seed=0, obs=obs).run()
        assert hub.violation_count() == 0
        assert hub.summary()["items_observed"] > 0
        assert hub.summary()["markers_observed"] > 0
        # Watermarks advanced all the way to the source frontier.
        assert hub.max_watermark_lag()[0] == 0


# ----------------------------------------------------------------------
# Parity: monitoring must not change simulation outcomes.
# ----------------------------------------------------------------------


class TestMonitorParity:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_monitored_run_bit_identical(self, seed):
        plain = LocalRunner(_compiled_iot().topology, seed=seed).run()
        compiled = _compiled_iot()
        hub = MonitorHub.for_compiled(compiled, MonitorConfig(
            order_key=lambda kv: default_order_token(kv.value),
            queue_depth_alert=1.0,
            watermark_lag_alert=1,
        ))
        obs = ObsContext.monitoring(hub)
        monitored = LocalRunner(compiled.topology, seed=seed, obs=obs).run()

        assert monitored.makespan == plain.makespan
        assert monitored.processed == plain.processed
        assert monitored.emitted == plain.emitted
        assert monitored.sink_events == plain.sink_events
        assert monitored.sink_delivery_times == plain.sink_delivery_times
        assert monitored.machine_busy == plain.machine_busy
        # And the monitors actually observed the run.
        assert hub.summary()["items_observed"] > 0
        assert hub.closed

    @pytest.mark.parametrize("sampling", ["nth", "epoch"])
    def test_sampling_modes_also_bit_identical(self, sampling):
        plain = LocalRunner(_compiled_iot().topology, seed=7).run()
        compiled = _compiled_iot()
        hub = MonitorHub.for_compiled(
            compiled, MonitorConfig(sampling=sampling, nth=3)
        )
        obs = ObsContext.monitoring(hub)
        monitored = LocalRunner(compiled.topology, seed=7, obs=obs).run()
        assert monitored.makespan == plain.makespan
        assert monitored.sink_events == plain.sink_events


# ----------------------------------------------------------------------
# Export: telemetry schema and Prometheus text.
# ----------------------------------------------------------------------


class TestExport:
    def _monitored_iot(self):
        compiled = _compiled_iot()
        hub = MonitorHub.for_compiled(compiled, MonitorConfig(
            order_key=lambda kv: default_order_token(kv.value)
        ))
        obs = ObsContext.collecting(monitors=hub)
        LocalRunner(compiled.topology, seed=0, obs=obs).run()
        return obs, hub

    def test_telemetry_records_validate_against_schema(self):
        _, hub = self._monitored_iot()
        records = hub.telemetry_records()
        assert records
        # validate_records raises TraceSchemaError on any bad record.
        assert validate_records(enumerate(records, start=1)) == len(records)

    def test_telemetry_jsonl_roundtrip(self, tmp_path):
        from repro.obs.schema import validate_jsonl

        _, hub = self._monitored_iot()
        path = tmp_path / "telemetry.jsonl"
        hub.write_telemetry_jsonl(str(path))
        assert validate_jsonl(str(path)) == len(hub.telemetry_records())

    def test_injected_violation_records_validate(self):
        hub = MonitorHub(MonitorConfig(order_key=_value_order))
        monitor = hub.attach_edge("a", "b", kind="O")
        monitor.observe(0, 0, KV("k", 2), 0.0)
        monitor.observe(0, 0, KV("k", 1), 0.5)
        hub.close(1.0)
        records = hub.telemetry_records()
        assert any(r["type"] == "violation" for r in records)
        assert validate_records(enumerate(records, start=1)) == len(records)

    def test_prometheus_text_exposes_metrics_and_monitors(self):
        obs, hub = self._monitored_iot()
        text = prometheus_text(obs.metrics, hub)
        assert "# TYPE repro_tuples_processed_total counter" in text
        assert "repro_monitor_violations_total 0" in text
        assert "repro_monitor_frontier_epochs" in text
        assert 'repro_monitor_watermark_lag_epochs{component="Avg"' in text

    def test_prometheus_violation_series_by_edge(self):
        hub = MonitorHub(MonitorConfig(order_key=_value_order))
        monitor = hub.attach_edge("a", "b", kind="O")
        monitor.observe(0, 0, KV("k", 2), 0.0)
        monitor.observe(0, 0, KV("k", 1), 0.5)
        from repro.obs import MetricsRegistry

        text = prometheus_text(MetricsRegistry(), hub)
        assert (
            'repro_monitor_violations_total'
            '{invariant="per-key-order",edge="a->b"} 1' in text
        )
        assert "repro_monitor_violations_total 1" in text  # grand total

    def test_nan_formatting(self):
        assert not math.isnan(0.0)  # placeholder sanity; _fmt covered below
        from repro.obs.export import _fmt

        assert _fmt(float("nan")) == "NaN"
        assert _fmt(float("inf")) == "+Inf"
        assert _fmt(1.5) == "1.5"
