"""Fault injection + exactly-once recovery on the simulated cluster.

The headline property of ``repro.storm.faults``/``repro.storm.recovery``:
for every fault kind (task crash, machine failure, message drop,
duplication, reordering) and every scheduler seed, a faulted run with
recovery enabled produces canonical sink traces equal to the fault-free
run.  Equality is *trace* equality — the data-trace type of each sink
edge decides which orders matter — which is exactly the paper's notion
of two executions denoting the same transduction.
"""

from __future__ import annotations

import random

import pytest

from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import TransductionDAG
from repro.errors import SimulationError, TaskFailureError
from repro.obs import ObsContext
from repro.obs.monitor import MonitorConfig, MonitorHub
from repro.obs.schema import validate_records
from repro.operators.base import KV, Marker
from repro.operators.library import map_values, tumbling_count
from repro.operators.sort import SortOp
from repro.storm import Cluster, Simulator
from repro.storm.batching import BatchingOptions
from repro.storm.costs import UniformCostModel
from repro.storm.faults import (
    CrashFault,
    EdgeFaults,
    FaultPlan,
    MachineFault,
)
from repro.storm.local import events_to_trace
from repro.storm.recovery import RecoveryOptions
from repro.traces.trace_type import ordered_type, unordered_type

U = unordered_type()
O = ordered_type()

SEEDS = range(5)


def build_dag():
    dag = TransductionDAG("recovery")
    src = dag.add_source("SRC", output_type=U)
    mapped = dag.add_op(
        map_values(lambda v: v + 1, name="MAP"), parallelism=2,
        upstream=[src], edge_types=[U],
    )
    counted = dag.add_op(
        tumbling_count("CNT"), parallelism=2, upstream=[mapped],
        edge_types=[U],
    )
    dag.add_sink("OUT", upstream=counted, input_type=U)
    return dag


def stream(seed=0, epochs=6, per_epoch=15):
    rng = random.Random(seed)
    events = []
    for epoch in range(1, epochs + 1):
        for _ in range(per_epoch):
            events.append(KV(rng.choice("abcde"), rng.randrange(10)))
        events.append(Marker(epoch))
    return events


def run(seed=0, faults=None, recovery=None, batching=False, cost=None,
        monitors=None, events=None, checkpoint_every=1):
    events = stream() if events is None else events
    compiled = compile_dag(build_dag(), {"SRC": source_from_events(events, 2)})
    if recovery is True:
        recovery = RecoveryOptions(checkpoint_every=checkpoint_every)
    simulator = Simulator(
        compiled.topology, Cluster(3, cores_per_machine=2), seed=seed,
        cost_model=cost,
        batching=BatchingOptions.for_compiled(compiled) if batching else None,
        faults=faults, recovery=recovery,
        obs=(ObsContext.collecting(monitors=monitors)
             if monitors is not None else None),
    )
    report = simulator.run()
    trace = events_to_trace(compiled.sinks["OUT"].aligned_events, False)
    return trace, report


BASELINE = None


@pytest.fixture(scope="module")
def baseline():
    global BASELINE
    if BASELINE is None:
        BASELINE = run()[0]
    return BASELINE


FAULT_KINDS = {
    "crash": FaultPlan(crashes=(CrashFault("MAP", task=0,
                                           after_executions=17),)),
    "drop": FaultPlan(default_edge=EdgeFaults(drop=0.15)),
    "duplicate": FaultPlan(default_edge=EdgeFaults(duplicate=0.15)),
    "reorder": FaultPlan(default_edge=EdgeFaults(reorder=0.3)),
}


class TestRecoveryParity:
    @pytest.mark.parametrize("kind", sorted(FAULT_KINDS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulted_run_recovers_to_baseline(self, baseline, kind, seed):
        plan = FaultPlan(
            crashes=FAULT_KINDS[kind].crashes,
            default_edge=FAULT_KINDS[kind].default_edge,
            seed=seed,
        )
        trace, report = run(seed=seed, faults=plan, recovery=True)
        assert trace == baseline, (kind, seed)
        stats = report.recovery
        engaged = {
            "crash": stats.recoveries,
            "drop": stats.retransmissions,
            "duplicate": stats.duplicates_filtered,
            "reorder": stats.reordered,
        }[kind]
        assert engaged >= 1, f"{kind} fault never engaged (seed {seed})"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_engine_recovers_too(self, baseline, seed):
        plan = FaultPlan(
            crashes=(CrashFault("MAP", task=0, after_executions=3),),
            default_edge=EdgeFaults(drop=0.05, duplicate=0.05, reorder=0.1),
            seed=seed,
        )
        trace, report = run(seed=seed, faults=plan, recovery=True,
                            batching=True)
        assert trace == baseline
        assert report.recovery.recoveries >= 1

    def test_combined_faults(self, baseline):
        plan = FaultPlan(
            crashes=(CrashFault("MAP", task=1, after_executions=25),),
            default_edge=EdgeFaults(drop=0.05, duplicate=0.05, reorder=0.1),
            seed=7,
        )
        trace, report = run(seed=7, faults=plan, recovery=True)
        assert trace == baseline
        stats = report.recovery
        assert stats.recoveries >= 1
        assert stats.retransmissions >= 1
        assert stats.duplicates_filtered >= 1

    def test_sparse_checkpoints(self, baseline):
        """checkpoint_every > 1: rollback reaches further, parity holds."""
        plan = FaultPlan(crashes=(CrashFault("CNT", task=0,
                                             after_executions=20),))
        trace, report = run(faults=plan, recovery=True, checkpoint_every=3)
        assert trace == baseline
        assert report.recovery.recoveries >= 1

    def test_fault_free_run_with_recovery_is_identical(self, baseline):
        trace, report = run(recovery=True)
        assert trace == baseline
        assert report.recovery.recoveries == 0
        assert report.recovery.checkpoints_taken > 0


class TestMachineFaults:
    @pytest.mark.parametrize("permanent", [False, True])
    def test_machine_failure_recovers(self, baseline, permanent):
        cost = UniformCostModel(10e-6)
        base_trace, base_report = run(cost=cost)
        assert base_trace == baseline
        fault = MachineFault(machine=1,
                             at_time=base_report.makespan * 0.5,
                             permanent=permanent)
        trace, report = run(cost=cost,
                            faults=FaultPlan(machine_faults=(fault,)),
                            recovery=True)
        assert trace == baseline
        assert report.recovery.recoveries >= 1

    def test_machine_failure_without_recovery_raises(self):
        cost = UniformCostModel(10e-6)
        _, base_report = run(cost=cost)
        fault = MachineFault(machine=0, at_time=base_report.makespan * 0.5)
        with pytest.raises(TaskFailureError, match="machine 0 failed"):
            run(cost=cost, faults=FaultPlan(machine_faults=(fault,)))


class TestFailureContext:
    def test_crash_without_recovery_carries_context(self):
        plan = FaultPlan(crashes=(CrashFault("MAP", task=0,
                                             after_executions=5),))
        with pytest.raises(TaskFailureError) as info:
            run(faults=plan)
        failure = info.value
        assert failure.component == "MAP"
        assert failure.task_index == 0
        assert failure.machine is not None
        assert failure.report is not None
        assert failure.report.input_all_tuples > 0

    def test_unknown_component_rejected(self):
        plan = FaultPlan(crashes=(CrashFault("NOPE", after_executions=1),))
        with pytest.raises(SimulationError, match="unknown task"):
            run(faults=plan)

    def test_gives_up_after_max_recoveries(self):
        """A permanently crash-looping task must terminate the run with
        a diagnosis, not loop forever."""
        plan = FaultPlan(crashes=tuple(
            CrashFault("MAP", task=0, after_executions=n)
            for n in range(2, 30)
        ))
        with pytest.raises(TaskFailureError, match="gave up after"):
            run(faults=plan,
                recovery=RecoveryOptions(max_recoveries=5))


class TestMonitorIntegration:
    """Satellite: recovery replay must not trip false violations."""

    def make_hub(self, compiled):
        return MonitorHub.for_compiled(compiled)

    def test_recovered_run_is_violation_free(self, baseline):
        events = stream()
        compiled = compile_dag(build_dag(),
                               {"SRC": source_from_events(events, 2)})
        hub = MonitorHub.for_compiled(compiled)
        plan = FaultPlan(
            crashes=(CrashFault("MAP", task=0, after_executions=40),),
            default_edge=EdgeFaults(drop=0.05, duplicate=0.05, reorder=0.1),
            seed=1,
        )
        simulator = Simulator(
            compiled.topology, Cluster(3, cores_per_machine=2), seed=1,
            faults=plan, recovery=RecoveryOptions(),
            obs=ObsContext.collecting(monitors=hub),
        )
        report = simulator.run()
        trace = events_to_trace(compiled.sinks["OUT"].aligned_events, False)
        assert trace == baseline
        assert report.recovery.recoveries >= 1
        assert hub.violation_count() == 0, hub.summary()
        assert hub.summary()["recoveries_total"] >= 1
        records = hub.telemetry_records()
        assert any(r.get("type") == "recovery" for r in records)
        validate_records(enumerate(records, start=1))

    def test_raw_reorder_on_o_edge_is_flagged_and_recovery_clears_it(self):
        """Negative control: the same faults that recovery absorbs are
        observable violations when injected raw."""

        def sorted_dag():
            dag = TransductionDAG("sorted")
            src = dag.add_source("SRC", output_type=U)
            sort = dag.add_op(SortOp(name="SORT"), parallelism=2,
                              upstream=[src], edge_types=[U])
            dag.add_sink("OUT", upstream=sort, input_type=O)
            return dag

        events = stream()
        config = MonitorConfig(order_key=lambda kv: kv.value)
        plan = FaultPlan(
            default_edge=EdgeFaults(reorder=0.6, reorder_delay=5e-3), seed=3,
        )

        def run_sorted(faults=None, recovery=None):
            compiled = compile_dag(sorted_dag(),
                                   {"SRC": source_from_events(events, 2)})
            hub = MonitorHub.for_compiled(compiled, config)
            Simulator(
                compiled.topology, Cluster(3, cores_per_machine=2), seed=0,
                faults=faults, recovery=recovery,
                obs=ObsContext.collecting(monitors=hub),
            ).run()
            trace = events_to_trace(compiled.sinks["OUT"].aligned_events,
                                    True)
            return trace, hub

        clean_trace, clean_hub = run_sorted()
        assert clean_hub.violation_count() == 0

        _, raw_hub = run_sorted(faults=plan)
        assert raw_hub.violation_counts.get("per-key-order", 0) >= 1

        recovered_trace, recovered_hub = run_sorted(
            faults=plan, recovery=RecoveryOptions())
        assert recovered_trace == clean_trace
        assert recovered_hub.violation_count() == 0, recovered_hub.summary()


class TestRecoveryReport:
    def test_report_carries_recovery_stats(self):
        plan = FaultPlan(default_edge=EdgeFaults(duplicate=0.2), seed=4)
        _, report = run(seed=4, faults=plan, recovery=True)
        stats = report.recovery.to_dict()
        assert stats["duplicates_filtered"] >= 1
        assert stats["checkpoints_taken"] >= 1
        assert stats["complete_epochs"] >= 1

    def test_no_faults_no_recovery_has_no_stats(self):
        _, report = run()
        assert report.recovery is None
