"""The automatic parallelism planner."""

import pytest

from repro.dag import TransductionDAG, evaluate_dag
from repro.dag.planner import Plan, plan_parallelism
from repro.operators.base import KV, Marker
from repro.operators.library import map_values, tumbling_count
from repro.traces.trace_type import unordered_type

U = unordered_type()


def make_dag():
    dag = TransductionDAG("planned")
    src = dag.add_source("src", output_type=U)
    heavy = dag.add_op(map_values(lambda v: v, name="heavy"), upstream=[src],
                       edge_types=[U])
    light = dag.add_op(tumbling_count("light"), upstream=[heavy],
                       edge_types=[U])
    dag.add_sink("out", upstream=light)
    return dag, heavy, light


class TestPlanner:
    def test_heavier_stage_gets_more_tasks(self):
        dag, heavy, light = make_dag()
        plan = plan_parallelism(
            dag, {"heavy": 30e-6, "light": 1e-6}, machines=4,
        )
        assert plan.parallelism[heavy.vertex_id] > plan.parallelism[light.vertex_id]

    def test_budget_tracks_cluster_size(self):
        dag, heavy, light = make_dag()
        small = plan_parallelism(dag, {"heavy": 30e-6, "light": 30e-6}, machines=1)
        large = plan_parallelism(dag, {"heavy": 30e-6, "light": 30e-6}, machines=8)
        assert large.total_tasks() > small.total_tasks()

    def test_every_stage_gets_at_least_one_task(self):
        dag, heavy, light = make_dag()
        plan = plan_parallelism(dag, {"heavy": 1000e-6, "light": 0.01e-6}, machines=2)
        assert plan.parallelism[light.vertex_id] >= 1

    def test_key_cardinality_caps(self):
        dag, heavy, light = make_dag()
        plan = plan_parallelism(
            dag, {"heavy": 1e-6, "light": 100e-6}, machines=8,
            key_cardinality={"light": 2},
        )
        assert plan.parallelism[light.vertex_id] <= 2

    def test_callable_cost_uses_item_cost(self):
        dag, heavy, light = make_dag()
        plan = plan_parallelism(
            dag,
            {"heavy": lambda e: 30e-6, "light": 1e-6},
            machines=4,
        )
        assert plan.parallelism[heavy.vertex_id] > plan.parallelism[light.vertex_id]

    def test_apply_preserves_semantics(self):
        dag, heavy, light = make_dag()
        plan = plan_parallelism(dag, {"heavy": 30e-6, "light": 5e-6}, machines=3)
        planned = plan.apply(dag)
        events = [KV("a", 1), KV("b", 2), Marker(1)]
        base = evaluate_dag(dag, {"src": events}).sink_trace("out", False)
        from repro.dag import deploy

        deployed = deploy(planned)
        got = evaluate_dag(deployed, {"src": events}).sink_trace("out", False)
        assert got == base

    def test_apply_does_not_mutate_original(self):
        dag, heavy, light = make_dag()
        plan = plan_parallelism(dag, {"heavy": 30e-6, "light": 5e-6}, machines=8)
        plan.apply(dag)
        assert dag.vertices[heavy.vertex_id].parallelism == 1

    def test_invalid_machines(self):
        dag, _, _ = make_dag()
        with pytest.raises(ValueError):
            plan_parallelism(dag, {}, machines=0)

    def test_empty_dag(self):
        dag = TransductionDAG("empty")
        plan = plan_parallelism(dag, {}, machines=2)
        assert plan.parallelism == {}
