"""Topology building and validation (the Storm-level API)."""

import pytest

from repro.errors import TopologyError
from repro.operators.base import KV, Marker
from repro.storm.topology import (
    Bolt,
    CaptureBolt,
    IteratorSpout,
    OutputCollector,
    TopologyBuilder,
)
from repro.storm.tuples import StormTuple


class Forward(Bolt):
    def execute(self, state, tup, collector):
        collector.emit(tup.event)


def simple_builder():
    builder = TopologyBuilder("t")
    builder.set_spout("src", IteratorSpout(lambda i, n: iter([KV("a", 1)])), 1)
    return builder


class TestBuilder:
    def test_build_simple(self):
        builder = simple_builder()
        builder.set_bolt("fwd", Forward(), 2).shuffle_grouping("src")
        topology = builder.build()
        assert set(topology.components) == {"src", "fwd"}
        assert topology.components["fwd"].parallelism == 2

    def test_duplicate_names_rejected(self):
        builder = simple_builder()
        with pytest.raises(TopologyError):
            builder.set_spout("src", IteratorSpout(lambda i, n: iter([])), 1)

    def test_unknown_upstream_rejected(self):
        builder = simple_builder()
        builder.set_bolt("fwd", Forward(), 1).shuffle_grouping("ghost")
        with pytest.raises(TopologyError):
            builder.build()

    def test_duplicate_grouping_rejected(self):
        builder = simple_builder()
        declarer = builder.set_bolt("fwd", Forward(), 1)
        declarer.shuffle_grouping("src")
        with pytest.raises(TopologyError):
            declarer.global_grouping("src")

    def test_cycle_rejected(self):
        builder = simple_builder()
        builder.set_bolt("a", Forward(), 1).shuffle_grouping("src").shuffle_grouping("b")
        builder.set_bolt("b", Forward(), 1).shuffle_grouping("a")
        with pytest.raises(TopologyError):
            builder.build()

    def test_zero_parallelism_rejected(self):
        builder = simple_builder()
        builder.set_bolt("fwd", Forward(), 0).shuffle_grouping("src")
        with pytest.raises(TopologyError):
            builder.build()

    def test_downstream_of(self):
        builder = simple_builder()
        builder.set_bolt("fwd", Forward(), 1).shuffle_grouping("src")
        topology = builder.build()
        consumers = topology.downstream_of("src")
        assert [name for name, _ in consumers] == ["fwd"]
        assert topology.downstream_of("fwd") == []


class TestSpoutsAndBolts:
    def test_iterator_spout_partition_args(self):
        seen = []

        def make(task, n):
            seen.append((task, n))
            return iter([])

        spout = IteratorSpout(make)
        spout.open(2, 4)
        assert seen == [(2, 4)]

    def test_iterator_spout_drains(self):
        spout = IteratorSpout(lambda i, n: iter([KV("a", 1), Marker(1)]))
        spout.open(0, 1)
        collector = OutputCollector()
        assert spout.next_tuple(collector) is True
        assert spout.next_tuple(collector) is True
        assert spout.next_tuple(collector) is False
        assert collector.drain() == [KV("a", 1), Marker(1)]

    def test_capture_bolt_records(self):
        bolt = CaptureBolt()
        bolt.prepare(0, 1)
        tup = StormTuple(KV("a", 1), "src", 0)
        bolt.execute(None, tup, OutputCollector())
        assert bolt.events() == [KV("a", 1)]

    def test_capture_bolt_resets_on_prepare(self):
        bolt = CaptureBolt()
        bolt.prepare(0, 1)
        bolt.execute(None, StormTuple(KV("a", 1), "src", 0), OutputCollector())
        bolt.prepare(0, 1)
        assert bolt.events() == []
