"""Block representation of U/O traces, and its agreement with the
general canonical-form machinery."""

import pytest
from hypothesis import given, settings

from repro.errors import TraceTypeError
from repro.operators.base import KV, Marker
from repro.traces.blocks import Block, BlockTrace
from repro.traces.items import kv_item, marker
from repro.traces.trace import DataTrace

from conftest import event_streams


class TestBlock:
    def test_unordered_block_is_a_bag(self):
        a, b = Block(False), Block(False)
        a.add("x", 1)
        a.add("y", 2)
        b.add("y", 2)
        b.add("x", 1)
        assert a == b

    def test_unordered_multiplicity_matters(self):
        a, b = Block(False), Block(False)
        a.add("x", 1)
        a.add("x", 1)
        b.add("x", 1)
        assert a != b

    def test_ordered_block_orders_per_key(self):
        a, b = Block(True), Block(True)
        a.add("x", 1)
        a.add("x", 2)
        b.add("x", 2)
        b.add("x", 1)
        assert a != b

    def test_ordered_block_cross_key_unordered(self):
        a, b = Block(True), Block(True)
        a.add("x", 1)
        a.add("y", 2)
        b.add("y", 2)
        b.add("x", 1)
        assert a == b

    def test_merge_from(self):
        a, b = Block(False), Block(False)
        a.add("x", 1)
        b.add("y", 2)
        a.merge_from(b)
        assert sorted(a.pairs()) == [("x", 1), ("y", 2)]

    def test_merge_kind_mismatch(self):
        with pytest.raises(TraceTypeError):
            Block(False).merge_from(Block(True))

    def test_size_and_copy(self):
        a = Block(True)
        a.add("x", 1)
        a.add("x", 2)
        clone = a.copy()
        clone.add("x", 3)
        assert a.size() == 2 and clone.size() == 3


class TestBlockTrace:
    def test_from_events_equivalences(self):
        t1 = BlockTrace.from_events(False, [("a", 1), ("b", 2), ("#", 1), ("a", 3)])
        t2 = BlockTrace.from_events(False, [("b", 2), ("a", 1), ("#", 1), ("a", 3)])
        assert t1 == t2

    def test_marker_timestamps_matter(self):
        t1 = BlockTrace.from_events(False, [("a", 1), ("#", 1)])
        t2 = BlockTrace.from_events(False, [("a", 1), ("#", 2)])
        assert t1 != t2

    def test_block_boundaries_matter(self):
        t1 = BlockTrace.from_events(False, [("a", 1), ("#", 1)])
        t2 = BlockTrace.from_events(False, [("#", 1), ("a", 1)])
        assert t1 != t2

    def test_paper_isomorphism_empty_vs_single_marker(self):
        # Example 3.2: eps ~ one empty bag; "#" ~ two empty bags.
        empty = BlockTrace.from_events(False, [])
        one_marker = BlockTrace.from_events(False, [("#", 1)])
        assert empty != one_marker
        assert empty.num_markers() == 0
        assert one_marker.num_markers() == 1

    def test_ordered_trace_per_key_sequences(self):
        t1 = BlockTrace.from_events(True, [("a", 1), ("a", 2), ("b", 9)])
        t2 = BlockTrace.from_events(True, [("b", 9), ("a", 1), ("a", 2)])
        t3 = BlockTrace.from_events(True, [("a", 2), ("a", 1), ("b", 9)])
        assert t1 == t2
        assert t1 != t3

    def test_prefix_order_unordered(self):
        small = BlockTrace.from_events(False, [("a", 1)])
        big = BlockTrace.from_events(False, [("b", 2), ("a", 1), ("#", 1)])
        assert small.is_prefix_of(big)
        assert not big.is_prefix_of(small)

    def test_prefix_requires_matching_closed_blocks(self):
        small = BlockTrace.from_events(False, [("a", 1), ("#", 1)])
        big = BlockTrace.from_events(False, [("a", 1), ("b", 2), ("#", 1)])
        # small's first block is CLOSED with different contents: not a prefix.
        assert not small.is_prefix_of(big)

    def test_prefix_order_ordered(self):
        small = BlockTrace.from_events(True, [("a", 1)])
        big = BlockTrace.from_events(True, [("a", 1), ("a", 2)])
        wrong = BlockTrace.from_events(True, [("a", 2)])
        assert small.is_prefix_of(big)
        assert not wrong.is_prefix_of(big)

    def test_total_pairs(self):
        t = BlockTrace.from_events(False, [("a", 1), ("#", 1), ("a", 2), ("b", 3)])
        assert t.total_pairs() == 3

    def test_accepts_item_objects(self):
        t1 = BlockTrace.from_events(False, [kv_item("a", 1), marker(1)])
        t2 = BlockTrace.from_events(False, [("a", 1), ("#", 1)])
        assert t1 == t2


class TestAgreementWithFormalTraces:
    """BlockTrace equivalence must coincide with DataTrace equivalence."""

    @given(event_streams(), event_streams())
    @settings(max_examples=60)
    def test_unordered_agreement(self, u_type, left, right):
        bt_equal = BlockTrace.from_events(False, left) == BlockTrace.from_events(
            False, right
        )
        dt_equal = DataTrace(u_type, _to_items(left)) == DataTrace(
            u_type, _to_items(right)
        )
        assert bt_equal == dt_equal

    @given(event_streams(), event_streams())
    @settings(max_examples=60)
    def test_ordered_agreement(self, o_type, left, right):
        bt_equal = BlockTrace.from_events(True, left) == BlockTrace.from_events(
            True, right
        )
        dt_equal = DataTrace(o_type, _to_items(left)) == DataTrace(
            o_type, _to_items(right)
        )
        assert bt_equal == dt_equal

    @given(event_streams())
    @settings(max_examples=40)
    def test_round_trip_to_items(self, u_type, stream):
        bt = BlockTrace.from_events(False, stream)
        again = BlockTrace.from_items(u_type, bt.to_items())
        assert bt == again


def _to_items(stream):
    items = []
    for event in stream:
        if isinstance(event, Marker):
            items.append(marker(event.timestamp))
        else:
            items.append(kv_item(event.key, event.value))
    return items
