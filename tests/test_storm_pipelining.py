"""Pipeline-parallelism and utilization properties of the simulator.

Regression coverage for the core-reservation flaw: a task waiting on its
own serial stream must not hold a machine's cores hostage, so two
co-located pipeline stages overlap in time instead of running serially.
"""

import pytest

from repro.compiler import compile_dag
from repro.compiler.compile import CompilerOptions, source_from_events
from repro.dag import TransductionDAG
from repro.operators.base import KV, Marker
from repro.operators.library import map_values
from repro.storm import Cluster, Simulator, round_robin_placement
from repro.storm.costs import PerComponentCostModel
from repro.traces.trace_type import unordered_type

U = unordered_type()


def pipeline(n_stages, n_events, parallelism=1):
    dag = TransductionDAG("pipe")
    src = dag.add_source("src", output_type=U)
    upstream = src
    for stage in range(n_stages):
        upstream = dag.add_op(
            map_values(lambda v: v, name=f"S{stage}"),
            parallelism=parallelism, upstream=[upstream], edge_types=[U],
        )
    dag.add_sink("out", upstream=upstream)
    events = [KV("k", i) for i in range(n_events)] + [Marker(1)]
    return compile_dag(
        dag, {"src": source_from_events(events, 1)},
        CompilerOptions(fusion=False),
    ).topology


class TestPipelineOverlap:
    def test_colocated_stages_overlap(self):
        """Two 30us stages on one 2-core machine: pipelined makespan must
        be close to one stage's serial time, not the sum of both."""
        cost = PerComponentCostModel({"S0": 30e-6, "S1": 30e-6})
        topology = pipeline(n_stages=2, n_events=200)
        report = Simulator(
            topology, Cluster(1, cores_per_machine=2), cost_model=cost, seed=1
        ).run()
        one_stage_serial = 200 * 31e-6
        # Perfect pipelining ~ 6.2ms (+ startup); serial would be ~12.4ms.
        assert report.makespan < one_stage_serial * 1.35

    def test_three_stage_pipeline_on_three_cores(self):
        cost = PerComponentCostModel({"S0": 20e-6, "S1": 20e-6, "S2": 20e-6})
        topology = pipeline(n_stages=3, n_events=200)
        report = Simulator(
            topology, Cluster(1, cores_per_machine=3), cost_model=cost, seed=1
        ).run()
        assert report.makespan < 200 * 21e-6 * 1.5

    def test_core_contention_still_enforced(self):
        """Two independent 30us tasks on ONE core serialize."""
        cost = PerComponentCostModel({"S0": 30e-6, "S1": 30e-6})
        topology = pipeline(n_stages=2, n_events=200)
        report = Simulator(
            topology, Cluster(1, cores_per_machine=1), cost_model=cost, seed=1
        ).run()
        total_work = 200 * 31e-6 * 2
        assert report.makespan >= total_work * 0.95

    def test_fifo_preserved_through_queueing(self):
        topology = pipeline(n_stages=2, n_events=100)
        report = Simulator(
            topology, Cluster(1),
            cost_model=PerComponentCostModel({"S0": 5e-6, "S1": 50e-6}),
            seed=3,
        ).run()
        values = [e.value for e in report.sink_events["out"] if isinstance(e, KV)]
        assert values == sorted(values)


class TestUtilization:
    def test_busy_machine_high_utilization(self):
        cost = PerComponentCostModel({"S0": 30e-6, "S1": 30e-6})
        topology = pipeline(n_stages=2, n_events=300)
        report = Simulator(
            topology, Cluster(1, cores_per_machine=2), cost_model=cost, seed=1
        ).run()
        assert report.utilization(0) > 0.8

    def test_underused_cluster_low_utilization(self):
        cost = PerComponentCostModel({"S0": 30e-6})
        topology = pipeline(n_stages=1, n_events=300, parallelism=1)
        report = Simulator(
            topology, Cluster(4, cores_per_machine=2), cost_model=cost, seed=1
        ).run()
        # One task on one of 4 machines: mean utilization far below full.
        assert report.mean_utilization() < 0.3

    def test_unknown_machine_utilization_zero(self):
        topology = pipeline(n_stages=1, n_events=10)
        report = Simulator(topology, Cluster(1), seed=1).run()
        assert report.utilization(99) == 0.0
