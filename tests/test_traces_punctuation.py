"""Generalized (key-scoped) punctuations — the Section 7 extension."""

import random

import pytest

from repro.operators.base import KV
from repro.traces.items import Item
from repro.traces.punctuation import (
    Punctuation,
    PunctuationReorder,
    data_tag,
    punct_tag,
    punctuated_type,
)
from repro.traces.trace import DataTrace


class TestPunctuatedType:
    def test_same_key_punct_ordered(self):
        X = punctuated_type()
        assert X.dependence.dependent(punct_tag("a"), punct_tag("a"))

    def test_punct_blocks_own_keys_data(self):
        X = punctuated_type()
        assert X.dependence.dependent(punct_tag("a"), data_tag("a"))

    def test_cross_key_independence(self):
        """The whole point: key a's punctuation does not order key b."""
        X = punctuated_type()
        assert X.dependence.independent(punct_tag("a"), data_tag("b"))
        assert X.dependence.independent(punct_tag("a"), punct_tag("b"))
        assert X.dependence.independent(data_tag("a"), data_tag("b"))

    def test_unordered_data_within_key(self):
        X = punctuated_type(ordered_per_key=False)
        assert X.dependence.independent(data_tag("a"), data_tag("a"))

    def test_ordered_variant(self):
        X = punctuated_type(ordered_per_key=True)
        assert X.dependence.dependent(data_tag("a"), data_tag("a"))

    def test_trace_equivalence_across_keys(self):
        """Items of different keys commute across each other's
        punctuations — the traces coincide."""
        X = punctuated_type()
        u = [
            Item(data_tag("a"), 1),
            Item(punct_tag("a"), 10),
            Item(data_tag("b"), 2),
        ]
        v = [
            Item(data_tag("b"), 2),
            Item(data_tag("a"), 1),
            Item(punct_tag("a"), 10),
        ]
        assert DataTrace(X, u) == DataTrace(X, v)

    def test_trace_inequivalence_same_key(self):
        X = punctuated_type()
        u = [Item(data_tag("a"), 1), Item(punct_tag("a"), 10)]
        v = [Item(punct_tag("a"), 10), Item(data_tag("a"), 1)]
        assert DataTrace(X, u) != DataTrace(X, v)


class TestPunctuationReorder:
    def test_releases_sorted_below_watermark(self):
        op = PunctuationReorder()
        out = op.run([
            KV("a", ("x", 5)), KV("a", ("y", 2)), KV("a", ("z", 9)),
            Punctuation("a", 7),
        ])
        released = [e for e in out if isinstance(e, KV)]
        assert [e.value for e in released] == [("y", 2), ("x", 5)]
        assert out[-1] == Punctuation("a", 7)

    def test_retains_items_at_or_above_watermark(self):
        op = PunctuationReorder()
        state = op.initial_state()
        op.handle(state, KV("a", ("x", 9)))
        out = op.handle(state, Punctuation("a", 9))
        assert [e for e in out if isinstance(e, KV)] == []
        out = op.handle(state, Punctuation("a", 10))
        assert [e.value for e in out if isinstance(e, KV)] == [("x", 9)]

    def test_keys_progress_independently(self):
        """A slow key's missing punctuation never blocks another key —
        impossible with global markers."""
        op = PunctuationReorder()
        out = op.run([
            KV("slow", ("s", 1)),
            KV("fast", ("f", 1)),
            Punctuation("fast", 100),
        ])
        released = [e for e in out if isinstance(e, KV)]
        assert [e.key for e in released] == ["fast"]

    def test_output_invariant_under_commutation(self):
        """Reordering input events that the punctuated type declares
        independent leaves the output trace unchanged."""
        base = [
            KV("a", ("a1", 3)), KV("b", ("b1", 4)), Punctuation("a", 10),
            KV("b", ("b2", 1)), Punctuation("b", 10),
        ]
        # Commute b's data across a's punctuation (independent tags).
        variant = [
            KV("b", ("b1", 4)), KV("a", ("a1", 3)), KV("b", ("b2", 1)),
            Punctuation("a", 10), Punctuation("b", 10),
        ]
        out1 = PunctuationReorder().run(base)
        out2 = PunctuationReorder().run(variant)

        def per_key(out):
            result = {}
            for e in out:
                if isinstance(e, KV):
                    result.setdefault(e.key, []).append(e.value)
            return result

        assert per_key(out1) == per_key(out2)

    def test_multiple_watermarks_accumulate(self):
        op = PunctuationReorder()
        out = op.run([
            KV("a", ("x", 1)), Punctuation("a", 2),
            KV("a", ("y", 2)), Punctuation("a", 3),
        ])
        released = [e.value for e in out if isinstance(e, KV)]
        assert released == [("x", 1), ("y", 2)]
