"""Canonical forms: lexicographic and Foata (Section 3.1 machinery).

The central property: a sequence and any dependence-respecting shuffle
of it share the same normal forms, and sequences that are *not*
equivalent have different normal forms.
"""

import random

from hypothesis import given, settings

from repro.traces.items import Item, marker
from repro.traces.normal_form import (
    foata_normal_form,
    lex_normal_form,
    random_equivalent_shuffle,
)
from repro.traces.tags import Tag

from conftest import M, example31_sequences, measurements


class TestLexNormalForm:
    def test_empty(self, example31_type):
        assert lex_normal_form(example31_type, []) == ()

    def test_sorts_independent_items(self, example31_type):
        items = measurements(8, 5, 5)
        assert lex_normal_form(example31_type, items) == tuple(measurements(5, 5, 8))

    def test_markers_block_commutation(self, example31_type):
        items = measurements(9, ts=1) + measurements(1)
        nf = lex_normal_form(example31_type, items)
        # The 1 cannot cross the marker even though 1 < 9.
        assert nf == (Item(M, 9), marker(1), Item(M, 1))

    def test_example_31_equivalence(self, example31_type):
        s1 = measurements(5, 5, 8, ts=1) + measurements(9)
        s2 = measurements(8, 5, 5, ts=1) + measurements(9)
        assert lex_normal_form(example31_type, s1) == lex_normal_form(
            example31_type, s2
        )

    def test_distinguishes_across_marker(self, example31_type):
        s1 = measurements(5, ts=1) + measurements(8)
        s2 = measurements(8, ts=1) + measurements(5)
        assert lex_normal_form(example31_type, s1) != lex_normal_form(
            example31_type, s2
        )

    def test_idempotent(self, example31_type):
        items = measurements(3, 1, 4, ts=1) + measurements(1, 5)
        nf = lex_normal_form(example31_type, items)
        assert lex_normal_form(example31_type, nf) == nf

    @given(example31_sequences())
    @settings(max_examples=60, deadline=None)
    def test_shuffle_invariance(self, example31_type, items):
        rng = random.Random(17)
        shuffled = random_equivalent_shuffle(example31_type, items, rng)
        assert lex_normal_form(example31_type, items) == lex_normal_form(
            example31_type, shuffled
        )

    @given(example31_sequences())
    @settings(max_examples=60, deadline=None)
    def test_preserves_multiset(self, example31_type, items):
        nf = lex_normal_form(example31_type, items)
        assert sorted(nf, key=Item.sort_key) == sorted(items, key=Item.sort_key)


class TestFoataNormalForm:
    def test_empty(self, example31_type):
        assert foata_normal_form(example31_type, []) == ()

    def test_steps_group_independent_items(self, example31_type):
        items = measurements(5, 7, ts=1) + measurements(9)
        steps = foata_normal_form(example31_type, items)
        assert steps == (
            (Item(M, 5), Item(M, 7)),
            (marker(1),),
            (Item(M, 9),),
        )

    def test_within_step_sorted(self, example31_type):
        steps = foata_normal_form(example31_type, measurements(9, 2, 5))
        assert steps == ((Item(M, 2), Item(M, 5), Item(M, 9)),)

    @given(example31_sequences())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_lex_on_equivalence(self, example31_type, items):
        rng = random.Random(3)
        shuffled = random_equivalent_shuffle(example31_type, items, rng)
        assert foata_normal_form(example31_type, items) == foata_normal_form(
            example31_type, shuffled
        )

    @given(example31_sequences(max_len=8))
    @settings(max_examples=40, deadline=None)
    def test_step_items_pairwise_independent(self, example31_type, items):
        for step in foata_normal_form(example31_type, items):
            for i, a in enumerate(step):
                for b in step[i + 1 :]:
                    assert example31_type.items_independent(a, b)


class TestRandomEquivalentShuffle:
    def test_preserves_length(self, example31_type):
        items = measurements(1, 2, 3, ts=1)
        rng = random.Random(0)
        assert len(random_equivalent_shuffle(example31_type, items, rng)) == len(items)

    def test_never_crosses_markers(self, example31_type):
        items = measurements(1, ts=1) + measurements(2, ts=2)
        rng = random.Random(0)
        for _ in range(20):
            shuffled = random_equivalent_shuffle(example31_type, items, rng)
            assert shuffled == items  # nothing commutes here
