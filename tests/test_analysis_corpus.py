"""The analysis corpus: pinned rule codes, CLI exit codes, and the
static/dynamic cross-check property.

Every corpus module declares ``EXPECT_STATIC``/``EXPECT_DYNAMIC`` (see
``tests/analysis_corpus/README.md``); these tests hold the analyzer to
those pins and verify the paper-level property that every operator the
static DT2xx rules or the dynamic DT9xx witnesses flag really is
rejected by ``validate_operator``.
"""

import ast
import importlib.util
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.cli import main as cli_main
from repro.errors import ConsistencyError
from repro.operators.base import Operator
from repro.operators.validate import validate_operator

CORPUS = Path(__file__).parent / "analysis_corpus"
REPO_ROOT = Path(__file__).parents[1]

BAD_FILES = sorted(CORPUS.glob("bad_*.py"))
GOOD_FILES = sorted(CORPUS.glob("good_*.py"))
ALL_FILES = BAD_FILES + GOOD_FILES


def _expectations(path: Path):
    """Read EXPECT_STATIC / EXPECT_DYNAMIC without importing the module."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    out = {"EXPECT_STATIC": (), "EXPECT_DYNAMIC": ()}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id in out:
                out[target.id] = ast.literal_eval(node.value)
    return out["EXPECT_STATIC"], out["EXPECT_DYNAMIC"]


def _import_corpus(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"corpus_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _ids(paths):
    return [p.stem for p in paths]


class TestStaticPins:
    @pytest.mark.parametrize("path", ALL_FILES, ids=_ids(ALL_FILES))
    def test_codes_match_pin(self, path):
        expected, _ = _expectations(path)
        report = analyze_paths([path])
        got = {f.code for f in report.findings}
        assert got == set(expected), report.render("text")

    def test_every_rule_family_has_a_corpus_case(self):
        families = set()
        for path in BAD_FILES:
            static, dynamic = _expectations(path)
            families |= {c[:3] for c in static} | {c[:3] for c in dynamic}
        # DT5xx cases are DAG builders (see test_analysis_dag.py).
        assert {"DT1", "DT2", "DT3", "DT4", "DT9"} <= families

    def test_every_rule_family_has_a_passing_case(self):
        # The good files cover every template family with zero findings;
        # per-rule passing snippets live in test_analysis_rules.py.
        report = analyze_paths(GOOD_FILES)
        assert report.findings == [], report.render("text")


class TestDynamicPins:
    @pytest.mark.parametrize("path", BAD_FILES, ids=_ids(BAD_FILES))
    def test_dynamic_codes_match_pin(self, path):
        _, expected = _expectations(path)
        report = analyze_paths([path], dynamic=True)
        dt9 = {f.code for f in report.findings if f.code.startswith("DT9")}
        assert set(expected) <= dt9, report.render("text")
        if not expected:
            assert not dt9, report.render("text")

    def test_good_files_clean_under_dynamic(self):
        report = analyze_paths(GOOD_FILES, dynamic=True)
        assert report.findings == [], report.render("text")


class TestCrossCheckProperty:
    """Every DT2xx/DT9xx-flagged corpus operator fails validate_operator.

    This is the linter's soundness anchor: the static commutativity and
    order heuristics (and the dynamic witnesses they merge with) only
    flag operators whose misbehavior is demonstrable on sampled runs.
    """

    def _flagged_classes(self):
        for path in BAD_FILES:
            report = analyze_paths([path], dynamic=True)
            flagged = {
                f.symbol.split(".")[0]
                for f in report.findings
                if f.symbol
                and (f.code.startswith("DT2") or f.code.startswith("DT9"))
            }
            if flagged:
                yield path, flagged

    def test_flagged_operators_fail_dynamic_validation(self):
        checked = 0
        for path, flagged in self._flagged_classes():
            module = _import_corpus(path)
            for cls_name in flagged:
                cls = getattr(module, cls_name)
                if not (isinstance(cls, type) and issubclass(cls, Operator)):
                    continue
                with pytest.raises(ConsistencyError):
                    validate_operator(cls())
                checked += 1
        assert checked >= 5  # the corpus must keep real coverage


class TestCli:
    @pytest.mark.parametrize(
        "path", BAD_FILES, ids=_ids(BAD_FILES)
    )
    def test_bad_files_fail_strict(self, path, capsys):
        static, _ = _expectations(path)
        if not static:
            pytest.skip("dynamic-only or DAG-builder corpus file")
        code = cli_main(["lint", "--strict", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        for expected in static:
            assert expected in out

    @pytest.mark.parametrize("path", GOOD_FILES, ids=_ids(GOOD_FILES))
    def test_good_files_pass_strict(self, path):
        assert cli_main(["lint", "--strict", str(path)]) == 0

    def test_repo_self_lint_is_clean(self):
        code = cli_main(
            [
                "lint", "--strict",
                str(REPO_ROOT / "src"), str(REPO_ROOT / "examples"),
            ]
        )
        assert code == 0

    def test_warning_only_file_passes_without_strict(self, tmp_path):
        target = tmp_path / "warn_only.py"
        target.write_text(
            CORPUS.joinpath("bad_first_seen_dict.py").read_text(
                encoding="utf-8"
            ),
            encoding="utf-8",
        )
        # DT203/DT204 are warnings: gate only under --strict.
        assert cli_main(["lint", str(target)]) == 0
        assert cli_main(["lint", "--strict", str(target)]) == 1

    def test_missing_path_is_a_usage_error(self):
        assert cli_main(["lint", "no/such/dir"]) == 2

    def test_json_format_lists_codes(self, capsys):
        cli_main(["lint", "--format", "json", str(BAD_FILES[0])])
        import json

        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, dict) and payload["findings"]

    def test_github_format_emits_workflow_commands(self, capsys):
        path = CORPUS / "bad_noncommutative_sub.py"
        cli_main(["lint", "--format", "github", str(path)])
        out = capsys.readouterr().out
        assert "::error" in out and "DT201" in out

    def test_select_and_ignore(self, capsys):
        path = str(CORPUS / "bad_first_seen_dict.py")
        cli_main(["lint", "--select", "DT204", path])
        out = capsys.readouterr().out
        assert "DT204" in out and "DT203" not in out
        cli_main(["lint", "--ignore", "DT2", path])
        out = capsys.readouterr().out
        assert "DT204" not in out and "DT203" not in out

    def test_explain_known_and_unknown(self, capsys):
        assert cli_main(["lint", "--explain", "DT203"]) == 0
        assert "DT203" in capsys.readouterr().out
        assert cli_main(["lint", "--explain", "DT999"]) == 2
