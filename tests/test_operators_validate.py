"""The template validation helper: accepts lawful operators, produces
witnesses against broken ones."""

import pytest

from repro.errors import ConsistencyError
from repro.operators.base import KV, Marker
from repro.operators.keyed_unordered import OpKeyedUnordered
from repro.operators.library import map_values, sliding_count, tumbling_count
from repro.operators.joins import DistinctCount, TopK
from repro.operators.sliding import sliding_max
from repro.operators.sort import SortOp
from repro.operators.stateless import OpStateless
from repro.operators.validate import (
    check_consistency_on,
    check_monoid_laws,
    validate_operator,
)


class BrokenMonoid(OpKeyedUnordered):
    """combine is subtraction: neither associative nor commutative."""

    def fold_in(self, key, value):
        return value

    def identity(self):
        return 0

    def combine(self, x, y):
        return x - y

    def init(self):
        return 0

    def update_state(self, old_state, agg):
        return old_state + agg

    def on_marker(self, new_state, key, m, emit):
        emit(key, new_state)


class OrderLeaker(OpStateless):
    """Emits a running index — output depends on arrival order."""

    def initial_state(self):
        state = super().initial_state()
        self._counter = 0  # intentionally hidden mutable state
        return state

    def on_item(self, key, value, emit):
        self._counter += 1
        emit(key, (value, self._counter))


class TestValidateAccepts:
    @pytest.mark.parametrize("factory", [
        lambda: map_values(lambda v: v + 1),
        tumbling_count,
        lambda: sliding_count(2),
        lambda: sliding_max(2),
        lambda: TopK(2),
        DistinctCount,
    ])
    def test_lawful_operators_pass(self, factory):
        validate_operator(factory())

    def test_sort_passes_with_ordered_output_flag(self):
        validate_operator(SortOp(), output_ordered=True)


class TestValidateRejects:
    def test_broken_monoid_caught(self):
        with pytest.raises(ConsistencyError, match="monoid"):
            check_monoid_laws(BrokenMonoid(), [KV("a", 1), KV("a", 2)])

    def test_broken_monoid_caught_by_validate(self):
        with pytest.raises(ConsistencyError):
            validate_operator(BrokenMonoid())

    def test_order_leaking_stateless_caught(self):
        with pytest.raises(ConsistencyError, match="inconsistent"):
            check_consistency_on(
                OrderLeaker(),
                [KV("a", 1), KV("a", 2), KV("b", 3), Marker(1)],
                shuffles=20,
                seed=1,
            )

    def test_witness_contains_inputs(self):
        try:
            check_consistency_on(
                OrderLeaker(),
                [KV("a", 1), KV("a", 2), KV("b", 3), Marker(1)],
                shuffles=20,
                seed=1,
            )
        except ConsistencyError as error:
            assert "input A" in str(error) and "input B" in str(error)
        else:
            pytest.fail("expected a consistency violation")


class TestSampling:
    """The shared sample-stream generators and the explicit-RNG plumbing."""

    def test_random_sample_events_deterministic_per_seed(self):
        import random

        from repro.operators.sampling import random_sample_events

        a = random_sample_events(random.Random(5))
        b = random_sample_events(random.Random(5))
        c = random_sample_events(random.Random(6))
        assert a == b
        assert a != c
        markers = [e for e in a if isinstance(e, Marker)]
        assert [m.timestamp for m in markers] == [1, 2, 3]

    def test_validate_operator_accepts_rng(self):
        import random

        # The same RNG instance drives the shuffles: two fresh generators
        # with one seed validate identically (and don't touch the global
        # RNG state).
        state_before = random.getstate()
        validate_operator(tumbling_count(), rng=random.Random(11))
        assert random.getstate() == state_before

    def test_check_consistency_on_rng_overrides_seed(self):
        import random

        with pytest.raises(ConsistencyError):
            check_consistency_on(
                OrderLeaker(),
                [KV("a", 1), KV("a", 2), KV("b", 3), Marker(1)],
                shuffles=20,
                seed=999,  # ignored: the rng below wins
                rng=random.Random(1),
            )
