"""(X, Y)-consistency checking (Definition 3.5): the checker must accept
consistent transductions and find witnesses against inconsistent ones —
the Section 2 story in miniature."""

import pytest

from repro.errors import ConsistencyError
from repro.traces.items import Item, marker
from repro.traces.trace_type import sequence_type
from repro.traces.tags import Tag
from repro.transductions.consistency import ConsistencyChecker, check_consistency
from repro.transductions.examples import StreamingMax
from repro.transductions.string_transduction import StringTransduction

from conftest import M, measurements


class FirstValueEmitter(StringTransduction):
    """Inconsistent on Example 3.1 inputs: emits the first item seen,
    which depends on the arbitrary order of the unordered block."""

    def step(self, state, item: Item):
        if item.is_marker():
            return ()
        if state is None or not state.get("seen"):
            # state dict survives; mark seen.
            (state or {}).update(seen=True)
            return (item.value,)
        return ()

    def initial(self):
        return {"seen": False}


def output_type():
    return sequence_type(int, tag_name="out")


def wrap_outputs(transduction):
    """Adapt value outputs to items of the output sequence type."""

    class Wrapped(StringTransduction):
        def initial(self):
            return transduction.initial()

        def step(self, state, item):
            return [Item(Tag("out"), v) for v in transduction.step(state, item)]

    return Wrapped()


class TestChecker:
    def test_streaming_max_is_consistent(self, example31_type):
        checker = ConsistencyChecker(example31_type, output_type(), seed=1)
        inputs = [
            measurements(5, 3, ts=1) + measurements(9, ts=2),
            measurements(1, 2, 3, 4, ts=1),
            [marker(1), marker(2)],
        ]
        violation = checker.check(wrap_outputs(StreamingMax()), inputs, shuffles=15)
        assert violation is None

    def test_first_value_emitter_caught(self, example31_type):
        checker = ConsistencyChecker(example31_type, output_type(), seed=1)
        inputs = [measurements(5, 3, 8, ts=1)]
        violation = checker.check(wrap_outputs(FirstValueEmitter()), inputs, shuffles=25)
        assert violation is not None
        assert violation.output_a != violation.output_b

    def test_check_consistency_raises_with_witness(self, example31_type):
        with pytest.raises(ConsistencyError) as exc_info:
            check_consistency(
                wrap_outputs(FirstValueEmitter()),
                example31_type,
                output_type(),
                inputs=[measurements(5, 3, 8, ts=1)],
                shuffles=25,
                seed=1,
            )
        assert exc_info.value.witness is not None

    def test_check_consistency_returns_none_when_clean(self, example31_type):
        result = check_consistency(
            wrap_outputs(StreamingMax()),
            example31_type,
            output_type(),
            inputs=[measurements(4, 4, 2, ts=1)],
            seed=0,
        )
        assert result is None

    def test_witness_reports_types_and_seed(self, example31_type):
        checker = ConsistencyChecker(example31_type, output_type(), seed=7)
        inputs = [measurements(5, 3, 8, ts=1)]
        violation = checker.check(
            wrap_outputs(FirstValueEmitter()), inputs, shuffles=25
        )
        assert violation is not None
        assert violation.input_type is example31_type
        assert violation.seed == 7
        text = str(violation)
        assert "-consistency" in text
        assert repr(example31_type) in text
        assert "[seed=7]" in text

    def test_check_generated_finds_violation_from_samples(self, u_type):
        checker = ConsistencyChecker(u_type, output_type(), seed=3)

        class FirstKeyEmitter(StringTransduction):
            """Order-dependent: emits only the first item's value."""

            def initial(self):
                return {"seen": False}

            def step(self, state, item):
                if item.is_marker() or state["seen"]:
                    return ()
                state["seen"] = True
                return (Item(Tag("out"), item.value),)

        violation = checker.check_generated(FirstKeyEmitter(), n_inputs=5)
        assert violation is not None
        assert violation.seed == 3

    def test_deterministic_given_seed(self, example31_type):
        checker1 = ConsistencyChecker(example31_type, output_type(), seed=9)
        checker2 = ConsistencyChecker(example31_type, output_type(), seed=9)
        inputs = [measurements(5, 3, 8, ts=1)]
        v1 = checker1.check(wrap_outputs(FirstValueEmitter()), inputs, shuffles=10)
        v2 = checker2.check(wrap_outputs(FirstValueEmitter()), inputs, shuffles=10)
        assert (v1 is None) == (v2 is None)
        if v1 is not None:
            assert v1.input_b == v2.input_b
