"""Snapshot/restore round-trip identity for every operator template.

The fault-tolerance layer (``repro.storm.recovery``) checkpoints
operator state with ``Operator.snapshot_state`` and rebuilds it with
``Operator.restore_state``.  Recovery is only exactly-once if a restored
operator is *observationally identical* to the live one — so for every
operator in :mod:`repro.operators.library` (plus ``SortOp`` and
``Merge``) we run a randomized prefix, snapshot, and then require:

- **identity** — the live continuation and a restored continuation
  produce exactly the same outputs on the same suffix;
- **reusability** — restoring the same snapshot a second time (as a
  second failure would) produces the same outputs again, i.e. the first
  restore did not corrupt the snapshot;
- **independence** — mutating the live state after the snapshot was
  taken does not change what the snapshot restores to.
"""

from __future__ import annotations

import random

import pytest

from repro.operators.base import KV, Marker
from repro.operators.library import (
    KeyedSequenceOp,
    MaxOfAvgPerKey,
    RunningAggregate,
    Sessionize,
    SlidingAggregate,
    TableJoin,
    TumblingAggregate,
    filter_items,
    flat_map,
    map_pairs,
    map_values,
    rekey,
    sliding_count,
    tumbling_count,
)
from repro.operators.merge import Merge
from repro.operators.sort import SortOp

KEYS = "abcd"
SEEDS = range(6)


def plain_stream(rng, n_blocks=4, per_block=8):
    events = []
    for block in range(1, n_blocks + 1):
        for _ in range(rng.randrange(per_block + 1)):
            events.append(KV(rng.choice(KEYS), rng.randrange(20)))
        events.append(Marker(block))
    return events


def sessions_stream(rng, n_blocks=4, per_block=6):
    """Per-key timestamp-ordered ``(payload, ts)`` values (an O stream)."""
    clocks = {key: 0 for key in KEYS}
    events = []
    for block in range(1, n_blocks + 1):
        for _ in range(rng.randrange(per_block + 1)):
            key = rng.choice(KEYS)
            clocks[key] += rng.randrange(1, 8)
            events.append(KV(key, (f"p{clocks[key]}", clocks[key])))
        events.append(Marker(max(clocks.values()) + block * 10))
    return events


OPERATORS = [
    ("map_values", lambda: map_values(lambda v: v + 1), plain_stream),
    ("map_pairs", lambda: map_pairs(lambda k, v: (k, v * 2)), plain_stream),
    ("filter", lambda: filter_items(lambda k, v: v % 2 == 0), plain_stream),
    ("rekey", lambda: rekey(lambda k, v: v % 3), plain_stream),
    ("flat_map",
     lambda: flat_map(lambda k, v: [(k, v), (k, v + 1)]), plain_stream),
    ("table_join",
     lambda: TableJoin(lambda k, v: [(k, (v, "joined"))] if v else []),
     plain_stream),
    ("tumbling",
     lambda: TumblingAggregate(
         lambda k, v: v, 0, lambda x, y: x + y, lambda k, a, ts: a),
     plain_stream),
    ("running",
     lambda: RunningAggregate(
         lambda k, v: v, 0, lambda x, y: x + y, lambda k, a, ts: a),
     plain_stream),
    ("sliding",
     lambda: SlidingAggregate(
         2, lambda k, v: v, 0, lambda x, y: x + y, lambda k, a, ts: a),
     plain_stream),
    ("tumbling_count", tumbling_count, plain_stream),
    ("sliding_count", lambda: sliding_count(3), plain_stream),
    ("max_of_avg", MaxOfAvgPerKey, plain_stream),
    ("sort", lambda: SortOp(), plain_stream),
    ("sessionize", lambda: Sessionize(gap=5), sessions_stream),
    ("keyed_seq",
     lambda: KeyedSequenceOp(
         lambda: 0, lambda s, v: (s + v, [s + v])), plain_stream),
]


def run_stream(op, state, events):
    out = []
    for event in events:
        out.extend(op.handle(state, event))
    return out


@pytest.mark.parametrize(
    "make_op,make_stream",
    [pytest.param(make, stream, id=name) for name, make, stream in OPERATORS],
)
@pytest.mark.parametrize("seed", SEEDS)
def test_snapshot_restore_roundtrip(make_op, make_stream, seed):
    rng = random.Random(seed)
    events = make_stream(rng)
    cut = rng.randrange(len(events) + 1)
    prefix, suffix = events[:cut], events[cut:]

    op = make_op()
    live = op.initial_state()
    run_stream(op, live, prefix)
    snapshot = op.snapshot_state(live)

    continued = run_stream(op, live, suffix)           # A: live
    restored = op.restore_state(snapshot)              # B: after rollback
    replayed = run_stream(op, restored, suffix)
    assert replayed == continued, "restored state diverged from live"

    restored_again = op.restore_state(snapshot)        # C: second failure
    assert run_stream(op, restored_again, suffix) == continued, (
        "first restore corrupted the snapshot"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_snapshot_is_independent_of_live_state(seed):
    """Post-snapshot live progress must not leak into the checkpoint."""
    rng = random.Random(seed)
    events = plain_stream(rng)
    cut = rng.randrange(len(events) + 1)
    prefix, suffix = events[:cut], events[cut:]

    op = tumbling_count()
    live = op.initial_state()
    run_stream(op, live, prefix)
    snapshot = op.snapshot_state(live)
    expected = run_stream(op, op.restore_state(snapshot), suffix)

    run_stream(op, live, suffix)  # mutate the live state further
    assert run_stream(op, op.restore_state(snapshot), suffix) == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_snapshot_roundtrip(seed):
    """The merge's alignment state (buffered blocks, marker queues)
    round-trips through snapshot/restore mid-alignment."""
    rng = random.Random(seed)
    merge = Merge(2)
    deliveries = []
    for channel in (0, 1):
        position = 0
        for event in plain_stream(rng, n_blocks=3):
            deliveries.append((position, channel, event))
            position += 1
    # Interleave the channels randomly but keep per-channel order.
    rng.shuffle(deliveries)
    deliveries.sort(key=lambda entry: entry[0])
    cut = rng.randrange(len(deliveries) + 1)

    live = merge.initial_state()
    for _, channel, event in deliveries[:cut]:
        merge.handle(live, channel, event)
    snapshot = merge.snapshot_state(live)

    def drain(state):
        out = []
        for _, channel, event in deliveries[cut:]:
            out.extend(merge.handle(state, channel, event))
        return out

    continued = drain(live)
    assert drain(merge.restore_state(snapshot)) == continued
    assert drain(merge.restore_state(snapshot)) == continued
