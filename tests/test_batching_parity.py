"""Batch/serial parity: the epoch kernels and the batched engines must
denote exactly the serial semantics.

The batch kernels (``Operator.handle_batch``) and the batched backends
built on them (``compile_inprocess(batched=True)``, ``Simulator`` with
:class:`~repro.storm.batching.BatchingOptions`) are only allowed to
reorder what the data-trace types declare invisible — so on every
workload their *canonical* output traces must coincide with the serial
paths'.  Three layers are checked here:

- **kernels** — random streams through each Table 1 template, fed
  per-event vs. in randomly chunked batches;
- **combiners** — a pre-folded :class:`CombinedAgg` per key per block
  must be indistinguishable from the raw items, and
  :func:`plan_combiners` must license exactly the edges where that is
  provable;
- **engines** — the Section 2 motivation pipeline compiled and run on
  the simulated cluster, serial vs. micro-batched + combined, across
  seeds: every run must reproduce the sequential denotation
  (seed-sweep invariance of the batched engine).
"""

from __future__ import annotations

import random

import pytest

from repro.apps.iot.pipeline import iot_typed_dag
from repro.apps.iot.sensors import SensorWorkload
from repro.compiler import compile_dag
from repro.compiler.compile import CompilerOptions, source_from_events
from repro.dag import TransductionDAG, evaluate_dag
from repro.operators.base import KV, Marker
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.keyed_unordered import CombinedAgg, OpKeyedUnordered
from repro.operators.library import (
    MaxOfAvgPerKey,
    TumblingAggregate,
    filter_items,
    map_values,
    rekey,
    sliding_count,
    tumbling_count,
)
from repro.operators.merge import Merge
from repro.operators.sort import SortOp
from repro.storm.batching import BatchingOptions, plan_combiners
from repro.storm.cluster import Cluster
from repro.storm.local import events_to_trace
from repro.storm.simulator import Simulator
from repro.traces.trace_type import unordered_type

U = unordered_type()


def random_stream(seed: int, n_blocks: int = 4, block_size: int = 12):
    rng = random.Random(seed)
    stream = []
    for block in range(1, n_blocks + 1):
        for _ in range(rng.randrange(block_size + 1)):
            stream.append(KV(rng.choice("abcd"), rng.randrange(10)))
        stream.append(Marker(block))
    return stream


def random_chunks(stream, seed: int):
    """Split a stream at random points (batch boundaries need not align
    with markers — the kernels must cope with partial blocks)."""
    rng = random.Random(seed)
    cuts = sorted(rng.sample(range(len(stream) + 1), min(4, len(stream))))
    chunks, prev = [], 0
    for cut in cuts + [len(stream)]:
        if cut > prev:
            chunks.append(stream[prev:cut])
            prev = cut
    return chunks


def run_serial(op, stream):
    state = op.initial_state()
    out = []
    for event in stream:
        out.extend(op.handle(state, event))
    return out


def run_batched(op, stream, chunk_seed: int):
    state = op.initial_state()
    out = []
    for chunk in random_chunks(stream, chunk_seed):
        out.extend(op.handle_batch(state, chunk))
    return out


class CumulativeSum(OpKeyedOrdered):
    def init(self):
        return 0

    def on_item(self, state, key, value, emit):
        total = state + value
        emit(key, total)
        return total


class CountWithEcho(TumblingAggregate):
    """A keyed-unordered op with an *active* ``on_item`` hook, to cover
    the kernel's per-item path (default-hook ops skip it)."""

    def on_item(self, last_state, key, value, emit):
        emit(key, ("echo", value))


def count_with_echo():
    return CountWithEcho(
        inject=lambda k, v: 1,
        identity_elem=0,
        combine_fn=lambda x, y: x + y,
        finish=lambda key, total, ts: total,
        name="echo-count",
    )


KERNEL_CASES = [
    ("map", lambda: map_values(lambda v: v + 1, name="inc"), False),
    ("filter", lambda: filter_items(lambda k, v: v % 3 != 0, name="f3"), False),
    ("rekey", lambda: rekey(lambda k, v: v % 2, name="rk"), False),
    ("tumbling-count", tumbling_count, False),
    ("sliding-count", lambda: sliding_count(2), False),
    ("max-of-avg", MaxOfAvgPerKey, False),
    ("count-with-echo", count_with_echo, False),
    ("sort", lambda: SortOp(sort_key=lambda v: v, name="srt"), True),
    ("cumsum", CumulativeSum, True),
]


class TestKernelParity:
    @pytest.mark.parametrize(
        "name, factory, ordered", KERNEL_CASES, ids=[c[0] for c in KERNEL_CASES]
    )
    def test_handle_batch_matches_handle(self, name, factory, ordered):
        for seed in range(6):
            stream = random_stream(seed)
            serial = run_serial(factory(), stream)
            batched = run_batched(factory(), stream, chunk_seed=seed * 31 + 7)
            assert events_to_trace(batched, ordered) == events_to_trace(
                serial, ordered
            ), f"{name}: batch kernel diverged on seed {seed}"

    def test_stateless_batch_is_bit_identical(self):
        # Stateless kernels do not even reorder: same event list.
        stream = random_stream(3)
        op = map_values(lambda v: v * 2, name="dbl")
        assert run_batched(op, stream, 5) == run_serial(op, stream)

    def test_whole_stream_single_batch(self):
        for _, factory, ordered in KERNEL_CASES:
            stream = random_stream(11)
            serial = run_serial(factory(), stream)
            op = factory()
            state = op.initial_state()
            whole = op.handle_batch(state, stream)
            assert events_to_trace(whole, ordered) == events_to_trace(
                serial, ordered
            )


class TestMergeKernelParity:
    def test_chunked_channels_match_per_event(self):
        for seed in range(5):
            rng = random.Random(seed)
            n_channels = rng.choice([2, 3])
            # One interleaved delivery schedule of (channel, event).
            deliveries = []
            for channel in range(n_channels):
                stream = random_stream(seed * 10 + channel, n_blocks=3)
                deliveries.append([(channel, e) for e in stream])
            schedule = []
            while any(deliveries):
                channel = rng.choice(
                    [c for c in range(n_channels) if deliveries[c]]
                )
                take = rng.randrange(1, 4)
                schedule.extend(deliveries[channel][:take])
                del deliveries[channel][:take]

            serial_merge = Merge(n_channels)
            state = serial_merge.initial_state()
            serial = []
            for channel, event in schedule:
                serial.extend(serial_merge.handle(state, channel, event))

            batched_merge = Merge(n_channels)
            state = batched_merge.initial_state()
            batched = []
            i = 0
            while i < len(schedule):
                channel = schedule[i][0]
                j = i
                while j < len(schedule) and schedule[j][0] == channel:
                    j += 1
                batched.extend(
                    batched_merge.handle_batch(
                        state, channel, [e for _, e in schedule[i:j]]
                    )
                )
                i = j
            # Marker alignment is deterministic, so the merged streams
            # are identical event-for-event, not just canonically.
            assert batched == serial


class TestCombinedAgg:
    def test_prefolded_block_equals_raw_items(self):
        for seed in range(5):
            stream = random_stream(seed)
            op = tumbling_count()
            serial = run_serial(op, stream)

            combined_op = tumbling_count()
            state = combined_op.initial_state()
            combined = []
            pending = {}
            for event in stream:
                if isinstance(event, Marker):
                    for key, agg in pending.items():
                        combined.extend(
                            combined_op.handle(state, KV(key, CombinedAgg(agg)))
                        )
                    pending.clear()
                    combined.extend(combined_op.handle(state, event))
                else:
                    folded = combined_op.fold_in(event.key, event.value)
                    if event.key in pending:
                        pending[event.key] = combined_op.combine(
                            pending[event.key], folded
                        )
                    else:
                        pending[event.key] = folded
            assert events_to_trace(combined, False) == events_to_trace(
                serial, False
            )


def combiner_pipeline(consumer_factory):
    dag = TransductionDAG("combiner-licensing")
    src = dag.add_source("src", output_type=U)
    v = dag.add_op(
        map_values(lambda v: v + 1, name="inc"), parallelism=2,
        upstream=[src], edge_types=[None],
    )
    v = dag.add_op(
        consumer_factory(), parallelism=2, upstream=[v], edge_types=[None]
    )
    dag.add_sink("out", upstream=v)
    return dag


class TestCombinerLicensing:
    def compile(self, dag, stream):
        return compile_dag(
            dag,
            {"src": source_from_events(stream, parallelism=2)},
            CompilerOptions(fusion=False),
        )

    def test_default_hook_keyed_unordered_edge_is_planned(self):
        stream = random_stream(1)
        compiled = self.compile(combiner_pipeline(tumbling_count), stream)
        plan = plan_combiners(compiled)
        assert len(plan) == 1, plan
        (edge,) = plan
        assert compiled.edge_kinds[edge] == "U"
        assert isinstance(plan[edge], OpKeyedUnordered)

    def test_active_on_item_disqualifies_edge(self):
        stream = random_stream(1)
        compiled = self.compile(combiner_pipeline(count_with_echo), stream)
        assert plan_combiners(compiled) == {}

    def test_non_keyed_unordered_head_disqualifies_edge(self):
        stream = random_stream(1)
        compiled = self.compile(
            combiner_pipeline(lambda: SortOp(sort_key=lambda v: v, name="srt")),
            stream,
        )
        assert plan_combiners(compiled) == {}


class TestSimulatorBatchingParity:
    """The Section 2 motivation pipeline, serial vs. batched, on the
    simulated cluster — canonical sink traces must be identical to the
    sequential denotation for every seed and every batching mode."""

    SEEDS = (0, 1, 2, 3)

    @pytest.fixture(scope="class")
    def workload(self):
        return SensorWorkload(n_sensors=3, duration=30, marker_period=10)

    @pytest.fixture(scope="class")
    def baseline(self, workload):
        dag = iot_typed_dag(parallelism=2)
        return evaluate_dag(
            dag, {"SENSOR": workload.events()}
        ).sink_trace("SINK", False)

    def simulate(self, workload, seed, batching_mode):
        dag = iot_typed_dag(parallelism=2)
        compiled = compile_dag(
            dag,
            {"SENSOR": source_from_events(workload.events(), parallelism=2)},
        )
        if batching_mode == "off":
            batching = None
        elif batching_mode == "micro":
            batching = BatchingOptions.for_compiled(compiled, combine=False)
        elif batching_mode == "combine":
            batching = BatchingOptions.for_compiled(
                compiled, micro_batch=False
            )
        else:
            batching = BatchingOptions.for_compiled(compiled)
        simulator = Simulator(
            compiled.topology,
            Cluster(3, cores_per_machine=2),
            seed=seed,
            batching=batching,
        )
        report = simulator.run()
        trace = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
        return trace, report

    @pytest.mark.parametrize("mode", ["off", "micro", "combine", "full"])
    def test_seed_sweep_matches_denotation(self, workload, baseline, mode):
        traces = []
        for seed in self.SEEDS:
            trace, _ = self.simulate(workload, seed, mode)
            assert trace == baseline, (mode, seed)
            traces.append(trace)
        # Seed-sweep invariance: every interleaving produced the same
        # canonical sink trace.
        assert all(trace == traces[0] for trace in traces)

    def test_batched_run_does_not_drop_work(self, workload):
        _, serial = self.simulate(workload, 1, "off")
        _, batched = self.simulate(workload, 1, "full")
        # Same inputs injected; the batched schedule coalesces
        # executions but every spout tuple is accounted for.
        assert batched.input_data_tuples == serial.input_data_tuples
        assert batched.input_all_tuples == serial.input_all_tuples
        assert batched.makespan > 0

    def test_max_batch_one_still_correct(self, workload, baseline):
        dag = iot_typed_dag(parallelism=2)
        compiled = compile_dag(
            dag,
            {"SENSOR": source_from_events(workload.events(), parallelism=2)},
        )
        batching = BatchingOptions.for_compiled(compiled, max_batch=1)
        Simulator(
            compiled.topology, Cluster(2), seed=2, batching=batching
        ).run()
        trace = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
        assert trace == baseline
