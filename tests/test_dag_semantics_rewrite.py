"""Denotational DAG evaluation and the Theorem 4.3 / Corollary 4.4
rewrites: parallelization must never change output traces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DagError
from repro.dag.graph import TransductionDAG, VertexKind
from repro.dag.rewrite import (
    choose_splitter,
    copy_dag,
    deploy,
    fuse_linear_chains,
    parallelize_vertex,
    reorder_merge_split,
)
from repro.dag.semantics import evaluate_dag
from repro.operators.base import KV, Marker
from repro.operators.identity import IdentityOp
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.library import (
    filter_items,
    map_values,
    sliding_count,
    tumbling_count,
)
from repro.operators.merge import Merge
from repro.operators.sort import SortOp
from repro.operators.split import HashSplit, RoundRobinSplit
from repro.operators.stateless import StatelessFn
from repro.traces.trace_type import ordered_type, unordered_type

from conftest import event_streams

U = unordered_type()
O = ordered_type()


def pipeline_dag(p1=1, p2=1):
    """src -> filter (stateless) -> tumbling count (keyed) -> sink."""
    dag = TransductionDAG("pipeline")
    src = dag.add_source("src", output_type=U)
    f = dag.add_op(
        filter_items(lambda k, v: v != 0, name="F"),
        parallelism=p1, upstream=[src], edge_types=[U],
    )
    c = dag.add_op(
        tumbling_count("C"), parallelism=p2, upstream=[f], edge_types=[U]
    )
    dag.add_sink("out", upstream=c, input_type=U)
    return dag


class TestEvaluate:
    def test_simple_pipeline(self):
        dag = pipeline_dag()
        events = [KV("a", 1), KV("a", 0), KV("b", 2), Marker(1)]
        result = evaluate_dag(dag, {"src": events})
        trace = result.sink_trace("out", ordered=False)
        assert trace.total_pairs() == 2  # counts for a and b

    def test_missing_source_input(self):
        dag = pipeline_dag()
        with pytest.raises(DagError):
            evaluate_dag(dag, {})

    def test_multi_source_merge_semantics(self):
        dag = TransductionDAG()
        a = dag.add_source("a", output_type=U)
        b = dag.add_source("b", output_type=U)
        op = dag.add_op(tumbling_count("C"), upstream=[a, b], edge_types=[U, U])
        dag.add_sink("out", upstream=op, input_type=U)
        result = evaluate_dag(
            dag,
            {
                "a": [KV("x", 1), Marker(1)],
                "b": [KV("x", 1), KV("y", 1), Marker(1)],
            },
        )
        trace = result.sink_trace("out", ordered=False)
        # Blocks united: x appears twice, y once.
        assert sorted(trace.blocks[0].pairs()) == [("x", 2), ("y", 1)]

    def test_edge_labels_exposed(self):
        dag = pipeline_dag()
        events = [KV("a", 1), Marker(1)]
        result = evaluate_dag(dag, {"src": events})
        assert len(result.edge_events) == len(dag.edges)


class TestParallelizeVertex:
    @given(event_streams(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=25)
    def test_stateless_parallelization_equivalence(self, events, n):
        dag = pipeline_dag()
        f_id = next(v.vertex_id for v in dag.vertices.values() if v.name == "F")
        rewritten = parallelize_vertex(dag, f_id, n)
        base = evaluate_dag(dag, {"src": events}).sink_trace("out", False)
        got = evaluate_dag(rewritten, {"src": events}).sink_trace("out", False)
        assert got == base

    @given(event_streams(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=25)
    def test_keyed_parallelization_equivalence(self, events, n):
        dag = pipeline_dag()
        c_id = next(v.vertex_id for v in dag.vertices.values() if v.name == "C")
        rewritten = parallelize_vertex(dag, c_id, n)
        base = evaluate_dag(dag, {"src": events}).sink_trace("out", False)
        got = evaluate_dag(rewritten, {"src": events}).sink_trace("out", False)
        assert got == base

    def test_splitter_choice(self):
        assert isinstance(choose_splitter(filter_items(lambda k, v: True), 2),
                          RoundRobinSplit)
        assert isinstance(choose_splitter(tumbling_count(), 2), HashSplit)
        assert isinstance(choose_splitter(SortOp(), 2), HashSplit)

    def test_structure_after_rewrite(self):
        dag = pipeline_dag()
        f_id = next(v.vertex_id for v in dag.vertices.values() if v.name == "F")
        rewritten = parallelize_vertex(dag, f_id, 3)
        kinds = [v.kind for v in rewritten.vertices.values()]
        assert kinds.count(VertexKind.SPLIT) == 1
        assert kinds.count(VertexKind.MERGE) == 1
        assert kinds.count(VertexKind.OP) == 4  # 3 copies of F + C

    def test_rejects_non_op(self):
        dag = pipeline_dag()
        src_id = dag.sources()[0].vertex_id
        with pytest.raises(DagError):
            parallelize_vertex(dag, src_id, 2)

    def test_n_one_is_noop(self):
        dag = pipeline_dag(p1=3)
        f_id = next(v.vertex_id for v in dag.vertices.values() if v.name == "F")
        rewritten = parallelize_vertex(dag, f_id, 1)
        assert len(rewritten.vertices) == len(dag.vertices)


class TestDeploy:
    @given(event_streams())
    @settings(max_examples=25)
    def test_corollary_44_full_deployment(self, events):
        """Corollary 4.4: the deployed DAG is equivalent to the source."""
        dag = pipeline_dag(p1=2, p2=3)
        deployed = deploy(dag)
        base = evaluate_dag(dag, {"src": events}).sink_trace("out", False)
        got = evaluate_dag(deployed, {"src": events}).sink_trace("out", False)
        assert got == base

    @given(event_streams())
    @settings(max_examples=15)
    def test_deploy_with_override(self, events):
        dag = pipeline_dag()
        ops = {v.vertex_id: 2 for v in dag.vertices.values()
               if v.kind == VertexKind.OP}
        deployed = deploy(dag, parallelism=ops)
        base = evaluate_dag(dag, {"src": events}).sink_trace("out", False)
        got = evaluate_dag(deployed, {"src": events}).sink_trace("out", False)
        assert got == base

    def test_ordered_pipeline_deployment(self):
        """SORT >> keyed-ordered parallelizes by key hash, preserving the
        per-key order (the Figure 1 pipeline in miniature)."""

        class Cumulative(OpKeyedOrdered):
            def init(self):
                return 0

            def on_item(self, state, key, value, emit):
                emit(key, state + value)
                return state + value

        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        sort = dag.add_op(SortOp(), parallelism=2, upstream=[src], edge_types=[U])
        cum = dag.add_op(Cumulative(), parallelism=2, upstream=[sort], edge_types=[O])
        dag.add_sink("out", upstream=cum, input_type=O)

        events = [KV("a", 3), KV("b", 5), KV("a", 1), Marker(1), KV("a", 2), Marker(2)]
        base = evaluate_dag(dag, {"src": events}).sink_trace("out", True)
        deployed = deploy(dag)
        got = evaluate_dag(deployed, {"src": events}).sink_trace("out", True)
        assert got == base


class TestReorderMergeSplit:
    def test_reorder_preserves_semantics(self):
        """MRG_2 >> HASH_2 == per-input HASH then per-channel MRG."""
        dag = TransductionDAG()
        a = dag.add_source("a", output_type=U)
        b = dag.add_source("b", output_type=U)
        merge = dag.add_merge(Merge(2), upstream=[a, b])
        split = dag.add_split(HashSplit(2), upstream=merge)
        x = dag.add_op(tumbling_count("X"), upstream=[split])
        y = dag.add_op(tumbling_count("Y"), upstream=[split])
        out_merge = dag.add_merge(Merge(2), upstream=[x, y])
        dag.add_sink("out", upstream=out_merge)
        dag.validate()

        inputs = {
            "a": [KV("a", 1), KV("b", 2), Marker(1)],
            "b": [KV("c", 3), Marker(1)],
        }
        base = evaluate_dag(dag, inputs).sink_trace("out", False)
        rewritten = reorder_merge_split(dag, merge.vertex_id)
        got = evaluate_dag(rewritten, inputs).sink_trace("out", False)
        assert got == base
        # The rewritten graph has two splitters and three merges.
        kinds = [v.kind for v in rewritten.vertices.values()]
        assert kinds.count(VertexKind.SPLIT) == 2
        assert kinds.count(VertexKind.MERGE) == 3

    def test_reorder_rejects_round_robin(self):
        dag = TransductionDAG()
        a = dag.add_source("a", output_type=U)
        b = dag.add_source("b", output_type=U)
        merge = dag.add_merge(Merge(2), upstream=[a, b])
        split = dag.add_split(RoundRobinSplit(2), upstream=merge)
        x = dag.add_op(IdentityOp(), upstream=[split])
        y = dag.add_op(IdentityOp(), upstream=[split])
        out_merge = dag.add_merge(Merge(2), upstream=[x, y])
        dag.add_sink("out", upstream=out_merge)
        with pytest.raises(DagError):
            reorder_merge_split(dag, merge.vertex_id)


class TestCopyAndFusion:
    def test_copy_is_deep_structurally(self):
        dag = pipeline_dag()
        clone = copy_dag(dag)
        clone.add_source("extra", output_type=U)
        assert len(dag.sources()) == 1
        assert len(clone.sources()) == 2

    def test_fusion_groups_cover_all_vertices(self):
        dag = deploy(pipeline_dag(p1=2, p2=2))
        groups = fuse_linear_chains(dag)
        flattened = [vid for group in groups for vid in group]
        assert sorted(flattened) == sorted(dag.vertices)
