"""Trace-transduction denotations (Section 3.3): well-definedness on
equivalence classes and monotonicity w.r.t. the prefix order."""

import random

import pytest

from repro.errors import ConsistencyError
from repro.traces.items import Item, marker
from repro.traces.normal_form import random_equivalent_shuffle
from repro.traces.tags import Tag
from repro.traces.trace import DataTrace
from repro.traces.trace_type import sequence_type
from repro.transductions.examples import StreamingMax
from repro.transductions.trace_transduction import TraceTransduction
from repro.transductions.string_transduction import StringTransduction

from conftest import M, measurements

OUT = sequence_type(int, tag_name="out")


class ItemStreamingMax(StringTransduction):
    """StreamingMax with item-typed outputs."""

    def initial(self):
        return {"max": None}

    def step(self, state, item):
        if item.is_marker():
            if state["max"] is None:
                return ()
            return (Item(Tag("out"), state["max"]),)
        if state["max"] is None or item.value > state["max"]:
            state["max"] = item.value
        return ()


def smax_denotation(example31_type):
    return TraceTransduction(ItemStreamingMax(), example31_type, OUT)


class TestDenotation:
    def test_well_defined_on_classes(self, example31_type):
        beta = smax_denotation(example31_type)
        rng = random.Random(4)
        items = measurements(5, 3, 8, ts=1) + measurements(9, ts=2)
        base = beta.apply_sequence(items)
        for _ in range(10):
            shuffled = random_equivalent_shuffle(example31_type, items, rng)
            assert beta.apply_sequence(shuffled) == base

    def test_apply_on_trace_object(self, example31_type):
        beta = smax_denotation(example31_type)
        trace = DataTrace(example31_type, measurements(5, ts=1))
        out = beta(trace)
        assert [i.value for i in out.canonical] == [5]

    def test_monotone_on_prefixes(self, example31_type):
        beta = smax_denotation(example31_type)
        items = measurements(2, 7, ts=1) + measurements(1, ts=2) + measurements(9)
        assert beta.check_monotone_on(items, samples=8, seed=0)

    def test_construction_time_verification_accepts(self, example31_type):
        TraceTransduction(
            ItemStreamingMax(),
            example31_type,
            OUT,
            verify_on=[measurements(5, 3, ts=1)],
        )

    def test_construction_time_verification_rejects(self, example31_type):
        class LeakOrder(StringTransduction):
            def step(self, state, item):
                if item.is_marker():
                    return ()
                return (Item(Tag("out"), item.value),)

        with pytest.raises(ConsistencyError):
            TraceTransduction(
                LeakOrder(),
                example31_type,
                OUT,
                verify_on=[measurements(5, 3, 8, ts=1)],
                seed=2,
            )
