"""The DAG-to-topology compiler: fusion chains, groupings, glue, and the
getStormTopology-style type rejection."""

import pytest

from repro.errors import CompilationError, TraceTypeError
from repro.compiler import compile_dag, CompilerOptions
from repro.compiler.compile import SourceSpec, source_from_events
from repro.compiler.glue import AlignedCaptureBolt, CompiledBolt, MergeFrontend
from repro.dag import TransductionDAG, evaluate_dag
from repro.operators.base import KV, Marker
from repro.operators.keyed_ordered import OpKeyedOrdered
from repro.operators.library import filter_items, map_values, tumbling_count
from repro.operators.sort import SortOp
from repro.operators.split import RoundRobinSplit
from repro.storm import LocalRunner
from repro.storm.groupings import MarkerAwareGrouping
from repro.storm.local import events_to_trace
from repro.storm.tuples import StormTuple
from repro.storm.topology import OutputCollector
from repro.traces.trace_type import ordered_type, unordered_type

U = unordered_type()
O = ordered_type()


class Cumulative(OpKeyedOrdered):
    def init(self):
        return 0

    def on_item(self, state, key, value, emit):
        emit(key, state + value)
        return state + value


def figure5_like_dag(parallelism=2):
    """src -> stateless -> SORT -> keyed-ordered -> stateless -> sink."""
    dag = TransductionDAG("fig5ish")
    src = dag.add_source("src", output_type=U)
    pre = dag.add_op(
        map_values(lambda v: v, name="Pre"), parallelism=parallelism,
        upstream=[src], edge_types=[U],
    )
    sort = dag.add_op(
        SortOp(name="SORT"), parallelism=parallelism, upstream=[pre],
        edge_types=[U],
    )
    cum = dag.add_op(
        Cumulative(), parallelism=parallelism, upstream=[sort], edge_types=[O],
        name="Cum",
    )
    post = dag.add_op(
        map_values(lambda v: v * 2, name="Post"), parallelism=parallelism,
        upstream=[cum], edge_types=[O],
    )
    dag.add_sink("SINK", upstream=post, input_type=U)
    return dag


EVENTS = [KV("a", 1), KV("b", 5), KV("a", 2), Marker(1), KV("a", 3), Marker(2)]


class TestFusionChains:
    def test_sort_chain_fused(self):
        compiled = compile_dag(
            figure5_like_dag(), {"src": source_from_events(EVENTS)}
        )
        names = set(compiled.topology.components)
        assert "SORT;Cum;Post" in names
        assert "Pre" in names

    def test_fusion_disabled(self):
        compiled = compile_dag(
            figure5_like_dag(),
            {"src": source_from_events(EVENTS)},
            CompilerOptions(fusion=False),
        )
        names = set(compiled.topology.components)
        assert {"Pre", "SORT", "Cum", "Post"} <= names

    def test_stateless_not_fused_into_keyed_head(self):
        """A keyed stage after a stateless one needs re-routing: no fusion."""
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        f = dag.add_op(filter_items(lambda k, v: True, name="F"),
                       parallelism=2, upstream=[src], edge_types=[U])
        c = dag.add_op(tumbling_count("C"), parallelism=2, upstream=[f],
                       edge_types=[U])
        dag.add_sink("SINK", upstream=c)
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS)})
        assert "F" in compiled.topology.components
        assert "C" in compiled.topology.components

    def test_parallelism_mismatch_breaks_chain(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        a = dag.add_op(map_values(lambda v: v, name="A"), parallelism=2,
                       upstream=[src], edge_types=[U])
        b = dag.add_op(map_values(lambda v: v, name="B"), parallelism=3,
                       upstream=[a], edge_types=[U])
        dag.add_sink("SINK", upstream=b)
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS)})
        assert {"A", "B"} <= set(compiled.topology.components)


class TestGroupings:
    def test_keyed_head_gets_hash(self):
        dag = figure5_like_dag()
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS)})
        spec = compiled.topology.components["SORT;Cum;Post"]
        (grouping,) = spec.inputs.values()
        assert isinstance(grouping, MarkerAwareGrouping)
        assert grouping.policy == "hash"

    def test_stateless_head_policy_configurable(self):
        dag = figure5_like_dag()
        compiled = compile_dag(
            dag,
            {"src": source_from_events(EVENTS)},
            CompilerOptions(stateless_policy="affinity"),
        )
        spec = compiled.topology.components["Pre"]
        (grouping,) = spec.inputs.values()
        assert grouping.policy == "affinity"

    def test_sink_gets_global(self):
        compiled = compile_dag(
            figure5_like_dag(), {"src": source_from_events(EVENTS)}
        )
        spec = compiled.topology.components["SINK"]
        (grouping,) = spec.inputs.values()
        assert grouping.policy == "global"


class TestRejections:
    def test_type_error_aborts_compilation(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        cum = dag.add_op(Cumulative(), upstream=[src], edge_types=[U])
        dag.add_sink("SINK", upstream=cum)
        with pytest.raises(TraceTypeError):
            compile_dag(dag, {"src": source_from_events(EVENTS)})

    def test_missing_source_spec(self):
        dag = figure5_like_dag()
        with pytest.raises(CompilationError):
            compile_dag(dag, {})

    def test_explicit_splitter_rejected(self):
        dag = TransductionDAG()
        src = dag.add_source("src", output_type=U)
        split = dag.add_split(RoundRobinSplit(2), upstream=src)
        a = dag.add_op(map_values(lambda v: v), upstream=[split])
        b = dag.add_op(map_values(lambda v: v), upstream=[split])
        from repro.operators.merge import Merge

        merge = dag.add_merge(Merge(2), upstream=[a, b])
        dag.add_sink("SINK", upstream=merge)
        with pytest.raises(CompilationError):
            compile_dag(dag, {"src": source_from_events(EVENTS)})


class TestGlue:
    def test_merge_frontend_aligns(self):
        frontend = MergeFrontend(2)
        state = frontend.new_state()
        out = []
        out += frontend.accept(state, StormTuple(Marker(1), "up", 0))
        assert out == []
        out += frontend.accept(state, StormTuple(KV("a", 1), "up", 1))
        out += frontend.accept(state, StormTuple(Marker(1), "up", 1))
        assert out == [KV("a", 1), Marker(1)]

    def test_merge_frontend_rejects_extra_channels(self):
        from repro.errors import SimulationError

        frontend = MergeFrontend(1)
        state = frontend.new_state()
        frontend.accept(state, StormTuple(KV("a", 1), "up", 0))
        with pytest.raises(SimulationError):
            frontend.accept(state, StormTuple(KV("a", 1), "up", 1))

    def test_compiled_bolt_chains_operators(self):
        bolt = CompiledBolt(
            [map_values(lambda v: v + 1), map_values(lambda v: v * 10)],
            n_channels=1,
        )
        state = bolt.prepare(0, 1)
        collector = OutputCollector()
        bolt.execute(state, StormTuple(KV("a", 1), "up", 0), collector)
        assert collector.drain() == [KV("a", 20)]

    def test_aligned_capture_requires_parallelism_one(self):
        from repro.errors import SimulationError

        bolt = AlignedCaptureBolt(n_channels=1)
        with pytest.raises(SimulationError):
            bolt.prepare(0, 2)


class TestEndToEnd:
    def test_compiled_equals_denotation_across_seeds(self):
        dag = figure5_like_dag(parallelism=3)
        expected = evaluate_dag(dag, {"src": EVENTS}).sink_trace("SINK", False)
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS, 2)})
        for seed in range(4):
            LocalRunner(compiled.topology, seed=seed).run()
            got = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
            assert got == expected

    def test_fusion_off_same_semantics(self):
        dag = figure5_like_dag(parallelism=2)
        expected = evaluate_dag(dag, {"src": EVENTS}).sink_trace("SINK", False)
        compiled = compile_dag(
            dag, {"src": source_from_events(EVENTS, 2)},
            CompilerOptions(fusion=False),
        )
        LocalRunner(compiled.topology, seed=1).run()
        got = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
        assert got == expected

    def test_source_from_events_partitions(self):
        spec = source_from_events(EVENTS, parallelism=2)
        part0 = list(spec.make_iterator(0, 2))
        part1 = list(spec.make_iterator(1, 2))
        data0 = [e for e in part0 if isinstance(e, KV)]
        data1 = [e for e in part1 if isinstance(e, KV)]
        assert len(data0) + len(data1) == 4
        assert part0.count(Marker(1)) == 1 and part1.count(Marker(1)) == 1

    def test_component_of_mapping(self):
        dag = figure5_like_dag()
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS)})
        assert set(compiled.component_of) == set(dag.vertices)
