"""The whole-graph invariance checker (Theorem 4.2 at DAG granularity)."""

import pytest

from repro.errors import ConsistencyError
from repro.dag import TransductionDAG
from repro.dag.semantics import check_dag_invariance
from repro.operators.base import Emitter, Event, KV, Marker, Operator
from repro.operators.library import map_values, sliding_count, tumbling_count
from repro.operators.sort import SortOp
from repro.traces.trace_type import unordered_type

U = unordered_type()

EVENTS = [
    KV("a", 3), KV("b", 1), KV("a", 2), Marker(1),
    KV("b", 4), KV("a", 7), Marker(2),
]


class FirstSeen(Operator):
    """Deliberately inconsistent: emits only the first item it sees."""

    input_kind = "U"
    output_kind = "U"
    name = "firstSeen"

    def initial_state(self):
        return {"done": False}

    def handle(self, state, event):
        if isinstance(event, Marker):
            return [event]
        if not state["done"]:
            state["done"] = True
            return [event]
        return []


def template_dag():
    dag = TransductionDAG("good")
    src = dag.add_source("src", output_type=U)
    a = dag.add_op(map_values(lambda v: v * 2, name="M"), parallelism=2,
                   upstream=[src], edge_types=[U])
    b = dag.add_op(sliding_count(2, name="C"), upstream=[a], edge_types=[U])
    dag.add_sink("out", upstream=b)
    return dag


class TestInvarianceChecker:
    def test_template_dag_passes(self):
        check_dag_invariance(template_dag(), {"src": EVENTS}, shuffles=8)

    def test_ordered_sink_flag(self):
        dag = TransductionDAG("sorted")
        src = dag.add_source("src", output_type=U)
        sort = dag.add_op(SortOp(), upstream=[src], edge_types=[U])
        dag.add_sink("out", upstream=sort)
        check_dag_invariance(
            dag, {"src": EVENTS}, shuffles=6, ordered_sinks={"out": True}
        )

    def test_inconsistent_vertex_caught(self):
        dag = TransductionDAG("bad")
        src = dag.add_source("src", output_type=U)
        bad = dag.add_op(FirstSeen(), upstream=[src], edge_types=[U])
        dag.add_sink("out", upstream=bad)
        with pytest.raises(ConsistencyError, match="out"):
            check_dag_invariance(dag, {"src": EVENTS}, shuffles=10, seed=3)

    def test_multi_source(self):
        dag = TransductionDAG("multi")
        s1 = dag.add_source("s1", output_type=U)
        s2 = dag.add_source("s2", output_type=U)
        op = dag.add_op(tumbling_count("C"), upstream=[s1, s2],
                        edge_types=[U, U])
        dag.add_sink("out", upstream=op)
        check_dag_invariance(
            dag,
            {"s1": EVENTS, "s2": [KV("z", 1), Marker(1), Marker(2)]},
            shuffles=6,
        )
