"""Compiler edge cases: name deduplication, explicit-MERGE inlining,
diamond-free naming, and source spec plumbing."""

import pytest

from repro.compiler import compile_dag
from repro.compiler.compile import CompilerOptions, SourceSpec, source_from_events
from repro.dag import TransductionDAG, evaluate_dag
from repro.operators.base import KV, Marker
from repro.operators.library import map_values, tumbling_count
from repro.operators.merge import Merge
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace
from repro.traces.trace_type import unordered_type

U = unordered_type()

EVENTS = [KV("a", 1), KV("b", 2), Marker(1), KV("a", 3), Marker(2)]


class TestNaming:
    def test_duplicate_stage_names_deduplicated(self):
        dag = TransductionDAG("dups")
        src = dag.add_source("src", output_type=U)
        # Two stages with the SAME name; differing parallelism prevents
        # fusion, so both become components and need distinct names.
        a = dag.add_op(map_values(lambda v: v + 1, name="stage"),
                       parallelism=1, upstream=[src], edge_types=[U])
        b = dag.add_op(map_values(lambda v: v * 2, name="stage"),
                       parallelism=2, upstream=[a], edge_types=[U])
        dag.add_sink("out", upstream=b)
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS)})
        names = set(compiled.topology.components)
        assert "stage" in names
        assert any(n.startswith("stage.") for n in names)

    def test_component_of_covers_sinks_and_sources(self):
        dag = TransductionDAG("cover")
        src = dag.add_source("src", output_type=U)
        op = dag.add_op(tumbling_count("C"), upstream=[src], edge_types=[U])
        sink = dag.add_sink("out", upstream=op)
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS)})
        assert compiled.component_of[src.vertex_id] == "src"
        assert compiled.component_of[sink.vertex_id] == "out"


class TestExplicitMergeInlining:
    def test_merge_vertex_compiles_to_frontend(self):
        """An explicit MRG vertex disappears into the consumer's merge
        frontend — its inputs become direct inputs of the consumer."""
        dag = TransductionDAG("mrg")
        s1 = dag.add_source("s1", output_type=U)
        s2 = dag.add_source("s2", output_type=U)
        merge = dag.add_merge(Merge(2), upstream=[s1, s2])
        op = dag.add_op(tumbling_count("C"), upstream=[merge], edge_types=[U])
        dag.add_sink("out", upstream=op)

        part1 = [KV("a", 1), Marker(1), Marker(2)]
        part2 = [KV("a", 2), Marker(1), KV("b", 5), Marker(2)]
        expected = evaluate_dag(dag, {"s1": part1, "s2": part2}).sink_trace(
            "out", False
        )
        compiled = compile_dag(
            dag,
            {"s1": SourceSpec(lambda t, n: iter(part1)),
             "s2": SourceSpec(lambda t, n: iter(part2))},
        )
        # No component named after the merge.
        assert all("MRG" not in name for name in compiled.topology.components)
        spec = compiled.topology.components["C"]
        assert set(spec.inputs) == {"s1", "s2"}
        LocalRunner(compiled.topology, seed=0).run()
        got = events_to_trace(compiled.sinks["out"].aligned_events, False)
        assert got == expected

    def test_chained_merges_inline_transitively(self):
        dag = TransductionDAG("mrg2")
        sources = [dag.add_source(f"s{i}", output_type=U) for i in range(3)]
        inner = dag.add_merge(Merge(2), upstream=sources[:2])
        outer = dag.add_merge(Merge(2), upstream=[inner, sources[2]])
        op = dag.add_op(tumbling_count("C"), upstream=[outer], edge_types=[U])
        dag.add_sink("out", upstream=op)
        streams = {
            f"s{i}": [KV(f"k{i}", 1), Marker(1)] for i in range(3)
        }
        expected = evaluate_dag(dag, streams).sink_trace("out", False)
        compiled = compile_dag(
            dag,
            {name: SourceSpec((lambda ev: lambda t, n: iter(ev))(events))
             for name, events in streams.items()},
        )
        spec = compiled.topology.components["C"]
        assert set(spec.inputs) == {"s0", "s1", "s2"}
        LocalRunner(compiled.topology, seed=1).run()
        got = events_to_trace(compiled.sinks["out"].aligned_events, False)
        assert got == expected


class TestParallelCombinatorExtras:
    def test_parallel_broadcast(self):
        from repro.transductions.combinators import parallel
        from repro.transductions.examples import RunningMaxFilter

        left, right = RunningMaxFilter(), RunningMaxFilter()
        par = parallel(
            left, right,
            route_left=lambda x: x < 100,
            broadcast=lambda x: x == 0,
        )
        # 0 goes to both, making both maxima 0; later items route by value.
        out = par.run([0, 5, 200])
        assert out == [0, 0, 5, 200]
