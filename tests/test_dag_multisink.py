"""Multi-sink DAGs: one stage feeding several consumers/sinks, through
evaluation, deployment rewrites, and compilation."""

import pytest

from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import TransductionDAG, evaluate_dag
from repro.operators.base import KV, Marker
from repro.operators.library import map_values, tumbling_count
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace
from repro.traces.trace_type import unordered_type

U = unordered_type()

EVENTS = [KV("a", 1), KV("b", 2), Marker(1), KV("a", 3), Marker(2)]


def fanout_dag():
    """src -> enrich -> {raw sink, counted sink}."""
    dag = TransductionDAG("fanout")
    src = dag.add_source("src", output_type=U)
    enrich = dag.add_op(
        map_values(lambda v: v * 10, name="E"), upstream=[src], edge_types=[U]
    )
    dag.add_sink("raw", upstream=enrich)
    count = dag.add_op(tumbling_count("C"), upstream=[enrich], edge_types=[U])
    dag.add_sink("counts", upstream=count)
    return dag


class TestEvaluation:
    def test_both_sinks_receive(self):
        result = evaluate_dag(fanout_dag(), {"src": EVENTS})
        raw = result.sink_trace("raw", False)
        counts = result.sink_trace("counts", False)
        assert raw.total_pairs() == 3
        assert counts.total_pairs() == 3  # a:1, b:1 in block 1; a:1 in block 2

    def test_branches_see_identical_stream(self):
        result = evaluate_dag(fanout_dag(), {"src": EVENTS})
        raw = result.sink_trace("raw", False)
        assert sorted(raw.blocks[0].pairs()) == [("a", 10), ("b", 20)]


class TestCompilation:
    def test_compiles_with_two_sinks(self):
        dag = fanout_dag()
        expected = evaluate_dag(dag, {"src": EVENTS})
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS, 2)})
        assert set(compiled.sinks) == {"raw", "counts"}
        LocalRunner(compiled.topology, seed=2).run()
        for sink_name in ("raw", "counts"):
            got = events_to_trace(
                compiled.sinks[sink_name].aligned_events, False
            )
            assert got == expected.sink_trace(sink_name, False)

    def test_multi_consumer_stage_not_fused(self):
        """E has two consumers, so it cannot be fused into either."""
        compiled = compile_dag(
            fanout_dag(), {"src": source_from_events(EVENTS, 1)}
        )
        assert "E" in compiled.topology.components
        assert "C" in compiled.topology.components

    def test_parallel_multi_consumer_stage(self):
        dag = TransductionDAG("fanout-par")
        src = dag.add_source("src", output_type=U)
        enrich = dag.add_op(
            map_values(lambda v: v + 1, name="E"), parallelism=3,
            upstream=[src], edge_types=[U],
        )
        dag.add_sink("s1", upstream=enrich)
        count = dag.add_op(tumbling_count("C"), parallelism=2,
                           upstream=[enrich], edge_types=[U])
        dag.add_sink("s2", upstream=count)
        expected = evaluate_dag(dag, {"src": EVENTS})
        compiled = compile_dag(dag, {"src": source_from_events(EVENTS, 2)})
        for seed in (0, 3):
            LocalRunner(compiled.topology, seed=seed).run()
            for sink_name in ("s1", "s2"):
                got = events_to_trace(
                    compiled.sinks[sink_name].aligned_events, False
                )
                assert got == expected.sink_trace(sink_name, False)
