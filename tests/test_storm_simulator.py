"""The discrete-event cluster simulator: correctness of delivery (FIFO
links, routing), cost accounting, contention, and determinism."""

import pytest

from repro.errors import SimulationError
from repro.operators.base import KV, Marker
from repro.storm.cluster import Cluster, Placement, round_robin_placement
from repro.storm.costs import (
    CostModel,
    PerComponentCostModel,
    UniformCostModel,
    ZeroCostModel,
)
from repro.storm.groupings import MarkerAwareGrouping, ShuffleGrouping
from repro.storm.local import LocalRunner
from repro.storm.simulator import Simulator
from repro.storm.topology import (
    Bolt,
    CaptureBolt,
    IteratorSpout,
    TopologyBuilder,
)


class Forward(Bolt):
    def execute(self, state, tup, collector):
        collector.emit(tup.event)


def chain_topology(events, bolt_parallelism=1, grouping=None):
    builder = TopologyBuilder("chain")
    builder.set_spout("src", IteratorSpout(lambda i, n: iter(events)), 1)
    builder.set_bolt("fwd", Forward(), bolt_parallelism).grouping(
        "src", grouping or MarkerAwareGrouping("rr")
    )
    sink = CaptureBolt()
    builder.set_bolt("sink", sink, 1).grouping("fwd", MarkerAwareGrouping("global"))
    return builder.build(), sink


class TestDelivery:
    def test_all_tuples_delivered(self):
        events = [KV("a", i) for i in range(50)] + [Marker(1)]
        topology, _ = chain_topology(events)
        report = Simulator(topology, Cluster(2)).run()
        data = [e for e in report.sink_events["sink"] if isinstance(e, KV)]
        assert len(data) == 50

    def test_fifo_per_link(self):
        """Tuples between a fixed producer and consumer task must arrive
        in emission order despite jittered network delays."""
        events = [KV("a", i) for i in range(200)]
        topology, _ = chain_topology(events, bolt_parallelism=1)
        report = Simulator(topology, Cluster(1), seed=5).run()
        values = [e.value for e in report.sink_events["sink"] if isinstance(e, KV)]
        assert values == sorted(values)

    def test_input_counters(self):
        events = [KV("a", 1), Marker(1), KV("b", 2)]
        topology, _ = chain_topology(events)
        report = Simulator(topology, Cluster(1)).run()
        assert report.input_data_tuples == 2
        assert report.input_all_tuples == 3

    def test_processed_counts(self):
        events = [KV("a", i) for i in range(10)]
        topology, _ = chain_topology(events, bolt_parallelism=2)
        report = Simulator(topology, Cluster(2)).run()
        assert report.processed["fwd"] == 10
        assert report.processed["sink"] == 10

    def test_runaway_guard(self):
        class Amplifier(Bolt):
            def execute(self, state, tup, collector):
                collector.emit(tup.event)
                collector.emit(tup.event)

        builder = TopologyBuilder("wide")
        builder.set_spout(
            "src", IteratorSpout(lambda i, n: iter([KV("a", 1)] * 40)), 1
        )
        previous = "src"
        for stage in range(12):
            builder.set_bolt(f"amp{stage}", Amplifier(), 1).grouping(
                previous, MarkerAwareGrouping("global")
            )
            previous = f"amp{stage}"
        topology = builder.build()
        with pytest.raises(SimulationError):
            Simulator(topology, Cluster(1), max_events=10_000).run()


class TestCostsAndScaling:
    def test_makespan_grows_with_cost(self):
        events = [KV("a", i) for i in range(100)]
        topology, _ = chain_topology(events)
        cheap = Simulator(topology, Cluster(1), cost_model=UniformCostModel(1e-6)).run()
        topology2, _ = chain_topology(events)
        costly = Simulator(
            topology2, Cluster(1), cost_model=UniformCostModel(100e-6)
        ).run()
        assert costly.makespan > cheap.makespan * 10

    def test_parallelism_improves_makespan(self):
        events = [KV("a", i) for i in range(300)]
        cost = PerComponentCostModel({"fwd": 50e-6})
        topology1, _ = chain_topology(events, bolt_parallelism=1)
        t1 = Simulator(topology1, Cluster(1), cost_model=cost, seed=1).run()
        topology4, _ = chain_topology(events, bolt_parallelism=4)
        t4 = Simulator(topology4, Cluster(4), cost_model=cost, seed=1).run()
        assert t4.makespan < t1.makespan / 2

    def test_throughput_definition(self):
        events = [KV("a", i) for i in range(10)]
        topology, _ = chain_topology(events)
        report = Simulator(topology, Cluster(1)).run()
        assert report.throughput() == pytest.approx(
            report.input_data_tuples / report.makespan
        )

    def test_cost_model_charges_per_component(self):
        model = PerComponentCostModel({"a": 5e-6, "b": lambda e: 7e-6})
        assert model.cpu_cost("a", KV("k", 1)) == 5e-6
        assert model.cpu_cost("b", KV("k", 1)) == 7e-6
        assert model.cpu_cost("other", KV("k", 1)) == model._default

    def test_network_locality(self):
        model = CostModel()
        import random as _random

        rng = _random.Random(0)
        assert model.network_delay(0, 0, rng) < model.network_delay(0, 1, rng)


class TestDeterminism:
    def test_same_seed_same_outputs(self):
        events = [KV("a", i) for i in range(30)] + [Marker(1)]
        topology, _ = chain_topology(
            events, bolt_parallelism=3, grouping=ShuffleGrouping()
        )
        r1 = Simulator(topology, Cluster(2), seed=7).run()
        topology2, _ = chain_topology(
            events, bolt_parallelism=3, grouping=ShuffleGrouping()
        )
        r2 = Simulator(topology2, Cluster(2), seed=7).run()
        assert r1.sink_events["sink"] == r2.sink_events["sink"]

    def test_different_seeds_can_differ(self):
        events = [KV("a", i) for i in range(30)] + [Marker(1)]
        orders = set()
        for seed in range(6):
            topology, _ = chain_topology(
                events, bolt_parallelism=3, grouping=ShuffleGrouping()
            )
            report = Simulator(topology, Cluster(2), seed=seed).run()
            orders.add(tuple(map(repr, report.sink_events["sink"])))
        assert len(orders) > 1


class TestPlacement:
    def test_round_robin_spreads_bolts(self):
        events = [KV("a", 1)]
        topology, _ = chain_topology(events, bolt_parallelism=4)
        cluster = Cluster(2)
        placement = round_robin_placement(topology, cluster)
        machines = {placement.machine_of("fwd", i) for i in range(4)}
        assert machines == {0, 1}

    def test_sources_offloaded(self):
        events = [KV("a", 1)]
        topology, _ = chain_topology(events)
        placement = round_robin_placement(topology, Cluster(2))
        assert placement.machine_of("src", 0) == Cluster.SOURCE_HOST
        assert placement.machine_of("sink", 0) == Cluster.SOURCE_HOST

    def test_missing_assignment_raises(self):
        placement = Placement()
        with pytest.raises(SimulationError):
            placement.machine_of("ghost", 0)

    def test_cluster_requires_machines(self):
        with pytest.raises(SimulationError):
            Cluster(0)


class TestLocalRunner:
    def test_runs_to_completion(self):
        events = [KV("a", 1), Marker(1)]
        topology, _ = chain_topology(events)
        report = LocalRunner(topology).run()
        assert report.input_data_tuples == 1

    def test_sweep_seeds_detects_invariance(self):
        events = [KV("a", 1), KV("a", 2), Marker(1)]
        topology, _ = chain_topology(events, bolt_parallelism=1)
        runner = LocalRunner(topology)
        traces = runner.sweep_seeds("sink", ordered=False, seeds=range(3))
        assert len(set(traces)) == 1


class TestReportEdgeCases:
    """Regression tests: empty or degenerate runs must degrade gracefully
    rather than raising KeyError / ZeroDivisionError."""

    def _empty_report(self):
        topology, _ = chain_topology([])  # spout exhausted immediately
        return Simulator(topology, Cluster(1), cost_model=ZeroCostModel()).run()

    def test_empty_run_throughput_is_zero(self):
        report = self._empty_report()
        assert report.makespan == 0.0
        assert report.throughput() == 0.0

    def test_nonempty_zero_makespan_throughput_is_inf(self):
        report = self._empty_report()
        report.input_data_tuples = 5  # data in zero simulated time
        assert report.throughput() == float("inf")

    def test_empty_run_utilization_is_zero(self):
        report = self._empty_report()
        assert report.mean_utilization() == 0.0
        assert report.utilization(0) == 0.0
        assert report.utilization(99) == 0.0  # unknown machine, no KeyError

    def test_marker_latencies_unknown_sink_is_empty(self):
        report = self._empty_report()
        assert report.marker_latencies("sink") == {}       # no deliveries
        assert report.marker_latencies("no-such-sink") == {}

    def test_marker_latencies_no_markers_is_empty(self):
        events = [KV("a", 1), KV("a", 2)]  # data only, no markers
        topology, _ = chain_topology(events)
        report = Simulator(topology, Cluster(1)).run()
        assert report.marker_latencies("sink") == {}

    def test_marker_latencies_normal_run_still_works(self):
        events = [KV("a", 1), Marker(1), KV("a", 2), Marker(2)]
        topology, _ = chain_topology(events)
        report = Simulator(topology, Cluster(1)).run()
        latencies = report.marker_latencies("sink")
        assert set(latencies) == {1, 2}
        assert all(v >= 0 for v in latencies.values())
