"""Ablation: automatic parallelism planning vs. uniform hints.

The paper leaves parallelism hints to the programmer; `repro.dag.planner`
derives them from the cost model.  On a pipeline with skewed stage costs
(an expensive enrichment in front of cheap aggregation), the planner
gives the heavy stage most of the task budget — this bench compares the
planned deployment against naive uniform hints on the same cluster.
"""

from __future__ import annotations

import pytest

from repro.apps.yahoo.queries import DB_LOOKUP_COST, WINDOW_UPDATE_COST, query4
from repro.bench import fused_cost_model, measure_throughput
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag.graph import VertexKind
from repro.dag.planner import plan_parallelism

from conftest import SPOUTS

MACHINES = 4
CORES = 2

VERTEX_COSTS = {"FilterMap": DB_LOOKUP_COST, "Count10s": WINDOW_UPDATE_COST}


def test_planner_vs_uniform(yahoo_workload, yahoo_events, benchmark):
    budget_tasks = MACHINES * CORES  # one task per core

    # Uniform: split the task budget evenly across the two stages.
    uniform_dag = query4(yahoo_workload.make_database(), parallelism=budget_tasks // 2)
    uniform = compile_dag(
        uniform_dag, {"events": source_from_events(yahoo_events, SPOUTS)}
    )
    uniform_report = measure_throughput(
        uniform.topology, MACHINES, fused_cost_model(VERTEX_COSTS)
    )

    # Planned: parallelism proportional to stage cost.
    planned_dag = query4(yahoo_workload.make_database(), parallelism=1)
    plan = plan_parallelism(
        planned_dag, VERTEX_COSTS, machines=MACHINES,
        cores_per_machine=CORES, tasks_per_core=1.0,
    )
    planned = compile_dag(
        plan.apply(planned_dag),
        {"events": source_from_events(yahoo_events, SPOUTS)},
    )
    planned_report = measure_throughput(
        planned.topology, MACHINES, fused_cost_model(VERTEX_COSTS)
    )

    hints = {
        planned_dag.vertices[vid].name: p
        for vid, p in plan.parallelism.items()
    }
    gain = planned_report.throughput() / uniform_report.throughput()
    print()
    print("Planner ablation (Query IV, 4 machines, 8-task budget):")
    print(f"  uniform hints : {budget_tasks // 2}+{budget_tasks // 2} tasks, "
          f"{uniform_report.throughput()/1e6:.3f} M tuples/s")
    print(f"  planned hints : {hints}, "
          f"{planned_report.throughput()/1e6:.3f} M tuples/s")
    print(f"  planner gain  : {gain:.2f}x")

    # The heavy stage must receive the lion's share...
    assert hints["FilterMap"] > hints["Count10s"]
    # ...and the planned deployment must not lose to uniform.
    assert gain >= 0.95

    benchmark.extra_info["planner_gain"] = round(gain, 3)
    benchmark.pedantic(lambda: planned_report, rounds=1, iterations=1)
