"""Section 2 motivation: naive data-parallelization is semantically
unsound; the typed deployment is interleaving-invariant.

Sweeps interleaving seeds over (a) the naive Storm-style pipeline with
``Map`` replicated under shuffle grouping, and (b) the compiled typed
pipeline with the ``SORT`` repair, and reports how many distinct outputs
each produces.  The paper's claim reproduced: the naive pipeline's
results are irreproducible (many distinct outputs, none guaranteed
correct) while every typed run equals the denotational semantics.
"""

from __future__ import annotations

import pytest

from repro.apps.iot import SensorWorkload, build_naive_topology, iot_typed_dag
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import evaluate_dag
from repro.operators.base import KV
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace

SEEDS = range(10)


def test_motivation_naive_vs_typed(benchmark):
    workload = SensorWorkload(n_sensors=4, duration=60, marker_period=10, seed=21)
    events = workload.events()

    # Naive pipeline, Map x2, across seeds.
    naive_outputs = set()
    for seed in SEEDS:
        topology, _ = build_naive_topology(events, map_parallelism=2)
        report = LocalRunner(topology, seed=seed).run()
        naive_outputs.add(
            tuple(sorted((e.key, e.value) for e in report.sink_events["SINK"]
                         if isinstance(e, KV)))
        )

    # Naive pipeline, Map x1 (the correct reference).
    topology, _ = build_naive_topology(events, map_parallelism=1)
    reference = LocalRunner(topology, seed=0).run()
    reference_output = tuple(
        sorted((e.key, e.value) for e in reference.sink_events["SINK"]
               if isinstance(e, KV))
    )

    # Typed pipeline, Map x2, across seeds.
    dag = iot_typed_dag(parallelism=2)
    denotation = evaluate_dag(dag, {"SENSOR": events}).sink_trace("SINK", False)
    compiled = compile_dag(dag, {"SENSOR": source_from_events(events, 1)})
    typed_outputs = set()
    for seed in SEEDS:
        LocalRunner(compiled.topology, seed=seed).run()
        typed_outputs.add(
            events_to_trace(compiled.sinks["SINK"].aligned_events, False)
        )

    print()
    print("Section 2 motivation experiment (10 interleaving seeds):")
    print(f"  naive Map x2 : {len(naive_outputs):>2} distinct outputs "
          f"(correct output among them: {reference_output in naive_outputs})")
    print(f"  typed Map x2 : {len(typed_outputs):>2} distinct outputs "
          f"(equal to denotational semantics: {typed_outputs == {denotation}})")

    assert len(naive_outputs) > 1, "naive parallelization must be nondeterministic"
    assert typed_outputs == {denotation}, "typed deployment must be invariant"

    benchmark.extra_info["naive_distinct"] = len(naive_outputs)
    benchmark.extra_info["typed_distinct"] = len(typed_outputs)

    def kernel():
        topology, _ = build_naive_topology(events, map_parallelism=2)
        return LocalRunner(topology, seed=1).run()

    benchmark.pedantic(kernel, rounds=1, iterations=1)
