"""Ablation: synchronization-marker period.

Section 4 notes the marker period is configurable (1 msec, 1 sec, ...)
and trades output granularity against overhead: markers are broadcast to
every task and every aligned marker triggers the blocking work.  This
ablation sweeps the Smart-Homes marker period and reports throughput —
short periods pay measurable marker overhead, long periods amortize it.
"""

from __future__ import annotations

import pytest

from repro.apps.smarthomes import SmartHomesWorkload, smart_homes_dag
from repro.bench import MarkerTriggerCost, fused_cost_model, measure_throughput
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events

from conftest import SPOUTS, TASKS_PER_MACHINE

MACHINES = 4
PERIODS = (2, 5, 10, 20)


def vertex_costs():
    return {
        "JFM": 30e-6,
        "SORT1": MarkerTriggerCost(1.5e-6, 20e-6),
        "LI": 1e-6,
        "Map": 0.5e-6,
        "SORT2": MarkerTriggerCost(1.5e-6, 20e-6),
        "Avg": 1e-6,
        "Predict": 5e-6,
    }


def test_ablation_marker_period(smarthomes_models, benchmark):
    results = {}
    for period in PERIODS:
        workload = SmartHomesWorkload(
            n_buildings=8, units_per_building=4, plugs_per_unit=3,
            duration=120, marker_period=period, seed=11,
        )
        events = workload.events()
        dag = smart_homes_dag(
            workload.make_database(), smarthomes_models,
            parallelism=MACHINES * TASKS_PER_MACHINE,
        )
        compiled = compile_dag(dag, {"hub": source_from_events(events, SPOUTS)})
        report = measure_throughput(
            compiled.topology, MACHINES, fused_cost_model(vertex_costs())
        )
        results[period] = report.throughput()

    print()
    print("Marker-period ablation (Smart Homes, 4 machines):")
    print("period(s)  throughput(Mtuples/s)")
    for period, throughput in results.items():
        print(f"{period:>9}  {throughput/1e6:>21.3f}")

    # Longer periods must not be slower than the shortest one.
    assert results[20] >= results[2], "marker overhead must shrink with period"

    benchmark.extra_info["throughput_by_period"] = {
        str(k): round(v / 1e6, 4) for k, v in results.items()
    }
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
