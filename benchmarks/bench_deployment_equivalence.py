"""Corollary 4.4 at scale: every deployment of a typed DAG computes the
same traces (Figure 1's rewritten deployments of the Example 4.1
pipeline).

Evaluates the Example 4.1-style pipeline sequentially (the denotation),
then through Theorem 4.3 deployments at several parallelism degrees
(both logical-DAG rewrites and compiled topologies across interleaving
seeds) and asserts all outputs coincide.
"""

from __future__ import annotations

import pytest

from repro.apps.iot import SensorWorkload, iot_typed_dag
from repro.compiler import compile_dag
from repro.compiler.compile import CompilerOptions, source_from_events
from repro.dag import deploy, evaluate_dag
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace

PARALLELISMS = (1, 2, 3, 4)
SEEDS = (0, 1, 2)


def test_deployment_equivalence(benchmark):
    workload = SensorWorkload(n_sensors=5, duration=80, marker_period=10, seed=33)
    events = workload.events()

    denotation = evaluate_dag(
        iot_typed_dag(parallelism=1), {"SENSOR": events}
    ).sink_trace("SINK", False)

    checked = 0
    for parallelism in PARALLELISMS:
        dag = iot_typed_dag(parallelism=parallelism)

        # (1) Logical Theorem 4.3 rewrite evaluated denotationally.
        deployed = deploy(dag)
        got = evaluate_dag(deployed, {"SENSOR": events}).sink_trace("SINK", False)
        assert got == denotation, f"logical deployment x{parallelism} differs"
        checked += 1

        # (2) Compiled topology executed under several interleavings,
        #     with and without fusion.
        for fusion in (True, False):
            compiled = compile_dag(
                dag,
                {"SENSOR": source_from_events(events, 1)},
                CompilerOptions(fusion=fusion),
            )
            for seed in SEEDS:
                LocalRunner(compiled.topology, seed=seed).run()
                got = events_to_trace(
                    compiled.sinks["SINK"].aligned_events, False
                )
                assert got == denotation, (
                    f"compiled x{parallelism} fusion={fusion} seed={seed} differs"
                )
                checked += 1

    print(f"\nCorollary 4.4: {checked} deployments, all equal to the denotation")
    benchmark.extra_info["deployments_checked"] = checked

    def kernel():
        compiled = compile_dag(
            iot_typed_dag(parallelism=4),
            {"SENSOR": source_from_events(events, 1)},
        )
        return LocalRunner(compiled.topology, seed=0).run()

    benchmark.pedantic(kernel, rounds=1, iterations=1)
