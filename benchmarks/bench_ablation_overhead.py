"""Section 6's overhead claim: "our framework incurs a small performance
penalty in the range of 0%-20%" for computationally cheap operators.

The DB-heavy queries hide framework glue behind the 30 us lookup; this
ablation strips the heavy cost (cheap stateless + cheap count) so the
glue dominates, and measures generated vs hand-crafted throughput —
the generated penalty must stay within the paper's 0-20% band.
"""

from __future__ import annotations

import pytest

from repro.apps.yahoo.handcrafted import handcrafted_query5
from repro.apps.yahoo.queries import query5
from repro.bench import fused_cost_model, measure_throughput
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events

from conftest import SPOUTS, TASKS_PER_MACHINE

MACHINES = 4

#: Cheap-operator cost table: every stage well under the glue scale.
CHEAP_VERTEX_COSTS = {"FilterMap": 1e-6, "CountTumbling": 0.5e-6}


def test_ablation_cheap_operator_overhead(yahoo_workload, yahoo_events, benchmark):
    dag = query5(
        yahoo_workload.make_database(),
        parallelism=MACHINES * TASKS_PER_MACHINE,
    )
    compiled = compile_dag(
        dag, {"events": source_from_events(yahoo_events, SPOUTS)}
    )
    generated = measure_throughput(
        compiled.topology, MACHINES,
        fused_cost_model(CHEAP_VERTEX_COSTS, generated=True),
    )

    topology, _sink = handcrafted_query5(
        yahoo_workload.make_database(), yahoo_events,
        parallelism=MACHINES * TASKS_PER_MACHINE, spouts=SPOUTS,
    )
    handcrafted = measure_throughput(
        topology, MACHINES, fused_cost_model(CHEAP_VERTEX_COSTS, generated=False)
    )

    penalty = 1.0 - generated.throughput() / handcrafted.throughput()
    print()
    print("Cheap-operator overhead ablation (Query V shape, 4 machines):")
    print(f"  hand-crafted: {handcrafted.throughput()/1e6:.3f} M tuples/s")
    print(f"  generated   : {generated.throughput()/1e6:.3f} M tuples/s")
    print(f"  generated penalty: {100 * penalty:.1f}%")

    assert penalty <= 0.20, (
        f"generated penalty {100*penalty:.1f}% exceeds the paper's 0-20% band"
    )

    benchmark.extra_info["penalty_percent"] = round(100 * penalty, 2)
    benchmark.pedantic(
        lambda: measure_throughput(
            compiled.topology, MACHINES,
            fused_cost_model(CHEAP_VERTEX_COSTS, generated=True),
        ),
        rounds=1,
        iterations=1,
    )
