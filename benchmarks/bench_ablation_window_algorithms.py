"""Ablation: sliding-window aggregation algorithms (the conclusion's
proposed specialized template).

Unlike the figure benchmarks (simulated time), this is a real CPU
microbenchmark: per-marker window maintenance with the two-stacks
algorithm vs. naive refolding, over a long window of a non-invertible
monoid (max).  The two-stacks algorithm is amortized O(1) per marker
while refolding is O(window), so the gap widens with the window length.
"""

from __future__ import annotations

import random

import pytest

from repro.operators.base import KV, Marker
from repro.operators.sliding import sliding_window

WINDOW = 256
BLOCKS = 600
KEYS = 4


def make_stream():
    rng = random.Random(3)
    stream = []
    for block in range(1, BLOCKS + 1):
        for _ in range(3):
            stream.append(KV(rng.randrange(KEYS), rng.randrange(10_000)))
        stream.append(Marker(block))
    return stream


def run(algorithm: str, stream):
    op = sliding_window(
        WINDOW,
        inject=lambda k, v: v,
        identity_elem=-1,
        combine_fn=max,
        algorithm=algorithm,
    )
    return op.run(stream)


@pytest.mark.parametrize("algorithm", ["two-stacks", "recompute"])
def test_window_algorithm(algorithm, benchmark):
    stream = make_stream()
    # Correctness cross-check before timing.
    if algorithm == "two-stacks":
        fast = [e for e in run("two-stacks", stream) if isinstance(e, KV)]
        slow = [e for e in run("recompute", stream) if isinstance(e, KV)]
        assert sorted(map(repr, fast)) == sorted(map(repr, slow))
    result = benchmark(run, algorithm, stream)
    assert any(isinstance(e, KV) for e in result)
