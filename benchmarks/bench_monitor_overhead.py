"""Monitor-overhead ablation: the online invariant monitors must be
cheap enough to leave on.

Monitored runs are bit-identical to plain runs (the parity tests pin
that), so the cost of monitoring is pure wall-clock: the per-delivery
edge-monitor taps plus the progress bookkeeping.  This ablation runs the
Figure 6 Smart-Homes pipeline (the workload the CI monitor job watches)
three ways — unmonitored, full sampling, and per-epoch digests — and
reports the wall-clock overhead of each monitored mode against the
plain run (min-of-N to suppress scheduler noise).

Budget: <=25% at full sampling, <=5% with per-epoch digests.
"""

from __future__ import annotations

import time

from repro.apps.smarthomes import (
    SmartHomesWorkload,
    smart_homes_dag,
    train_predictor,
)
from repro.bench import MarkerTriggerCost, fused_cost_model, measure_throughput
from repro.bench.reporting import emit_bench_json
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.obs import MonitorConfig, MonitorHub, ObsContext

from conftest import SPOUTS, TASKS_PER_MACHINE

MACHINES = 4
ROUNDS = 3

FULL_BUDGET = 0.25
EPOCH_BUDGET = 0.05


def _vertex_costs():
    return {
        "JFM": 30e-6,
        "SORT1": MarkerTriggerCost(1.5e-6, 20e-6),
        "LI": 1e-6,
        "Map": 0.5e-6,
        "SORT2": MarkerTriggerCost(1.5e-6, 20e-6),
        "Avg": 1e-6,
        "Predict": 5e-6,
    }


def _setup():
    """A small-but-real Smart-Homes compile (full pipeline shape)."""
    workload = SmartHomesWorkload(
        n_buildings=6, units_per_building=4, plugs_per_unit=3, duration=60,
    )
    models = train_predictor(horizon=120, train_seconds=400, past=60)
    events = workload.events()

    def build():
        dag = smart_homes_dag(
            workload.make_database(), models,
            parallelism=MACHINES * TASKS_PER_MACHINE,
        )
        return compile_dag(dag, {"hub": source_from_events(events, SPOUTS)})

    return build


def _time_run(build, make_obs):
    """Min-of-ROUNDS wall-clock seconds for one simulated run."""
    best = float("inf")
    makespan = None
    for _ in range(ROUNDS):
        compiled = build()
        obs = make_obs(compiled)
        cost_model = fused_cost_model(_vertex_costs())
        start = time.perf_counter()
        report = measure_throughput(
            compiled.topology, MACHINES, cost_model, obs=obs
        )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        makespan = report.makespan
    return best, makespan


def _monitored(sampling):
    def make_obs(compiled):
        hub = MonitorHub.for_compiled(
            compiled, MonitorConfig(sampling=sampling)
        )
        return ObsContext.monitoring(hub)

    return make_obs


def test_monitor_overhead(benchmark):
    build = _setup()
    plain, plain_makespan = _time_run(build, lambda compiled: None)
    full, full_makespan = _time_run(build, _monitored("all"))
    epoch, epoch_makespan = _time_run(build, _monitored("epoch"))

    # Parity first: monitoring must not move the simulated outcome.
    assert full_makespan == plain_makespan
    assert epoch_makespan == plain_makespan

    full_overhead = full / plain - 1.0
    epoch_overhead = epoch / plain - 1.0
    print()
    print("Monitor overhead ablation (Smart-Homes pipeline, "
          f"{MACHINES} machines, min of {ROUNDS} runs):")
    print(f"  plain            : {plain * 1e3:8.1f} ms")
    print(f"  monitors (all)   : {full * 1e3:8.1f} ms "
          f"({100 * full_overhead:+.1f}%)")
    print(f"  monitors (epoch) : {epoch * 1e3:8.1f} ms "
          f"({100 * epoch_overhead:+.1f}%)")

    assert full_overhead <= FULL_BUDGET, (
        f"full-sampling overhead {100 * full_overhead:.1f}% exceeds "
        f"{100 * FULL_BUDGET:.0f}%"
    )
    assert epoch_overhead <= EPOCH_BUDGET, (
        f"per-epoch-digest overhead {100 * epoch_overhead:.1f}% exceeds "
        f"{100 * EPOCH_BUDGET:.0f}%"
    )

    benchmark.extra_info["full_overhead_percent"] = round(100 * full_overhead, 2)
    benchmark.extra_info["epoch_overhead_percent"] = round(
        100 * epoch_overhead, 2
    )
    emit_bench_json("BENCH_monitor_overhead.json", {
        "monitor_overhead": {
            "workload": "smarthomes-small",
            "machines": MACHINES,
            "rounds": ROUNDS,
            "plain_seconds": round(plain, 6),
            "full_sampling_seconds": round(full, 6),
            "epoch_digest_seconds": round(epoch, 6),
            "full_sampling_overhead_percent": round(100 * full_overhead, 2),
            "epoch_digest_overhead_percent": round(100 * epoch_overhead, 2),
            "budget_full_percent": 100 * FULL_BUDGET,
            "budget_epoch_percent": 100 * EPOCH_BUDGET,
        },
    })

    benchmark.pedantic(
        lambda: _time_run(build, _monitored("all")), rounds=1, iterations=1
    )
