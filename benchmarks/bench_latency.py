"""Latency study: end-to-end marker latency of the compiled pipelines.

Not a paper figure (the paper reports throughput only), but the natural
companion measurement the simulator's clock makes available: how long
after a synchronization marker leaves the sources does it complete
alignment at the sink — i.e., how stale are the emitted window results?

Two effects are measured on Query IV:

- more machines drain queues faster, so marker latency falls as the
  cluster grows (until the pipeline is unsaturated);
- the marker period bounds result staleness from above: latency is
  dominated by queueing behind the block's data.
"""

from __future__ import annotations

import statistics

import pytest

from repro.apps.yahoo.queries import DB_LOOKUP_COST, WINDOW_UPDATE_COST, query4
from repro.bench import fused_cost_model, measure_throughput
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events

from conftest import SPOUTS, TASKS_PER_MACHINE

MACHINES = (1, 2, 4, 8)


def test_marker_latency_vs_machines(yahoo_workload, yahoo_events, benchmark):
    results = {}
    for n in MACHINES:
        dag = query4(
            yahoo_workload.make_database(), parallelism=n * TASKS_PER_MACHINE
        )
        compiled = compile_dag(
            dag, {"events": source_from_events(yahoo_events, SPOUTS)}
        )
        report = measure_throughput(
            compiled.topology, n,
            fused_cost_model(
                {"FilterMap": DB_LOOKUP_COST, "Count10s": WINDOW_UPDATE_COST}
            ),
        )
        latencies = report.marker_latencies("SINK")
        results[n] = statistics.mean(latencies.values())

    print()
    print("Marker end-to-end latency (Query IV):")
    print("machines  mean latency (ms)")
    for n, latency in results.items():
        print(f"{n:>8}  {latency * 1000:>17.2f}")

    # More machines must not make results staler.
    assert results[8] <= results[1]
    assert all(latency > 0 for latency in results.values())

    benchmark.extra_info["latency_ms_by_machines"] = {
        str(n): round(latency * 1000, 3) for n, latency in results.items()
    }
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
