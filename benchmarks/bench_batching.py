"""Epoch-batched vs. event-at-a-time execution.

The batching engine's headline numbers: the in-process backend runs the
Figure 6 Smart-Homes pipeline both event-at-a-time (``push`` through
``Operator.handle``) and epoch-batched (``push_batch`` through the
batch kernels), asserts the canonical sink traces are identical — the
data-trace types license the batching, so the denotation must not move —
and reports the wall-clock speedup.  A second case runs the Section 2
motivation pipeline as a small smoke workload (the CI perf gate), and a
third compares the simulated cluster with micro-batching and typed
shuffle combiners on vs. off.

Measurement protocol (``timeit``'s): GC disabled inside the timed
region, best-of-N (min) as the estimator.
"""

from __future__ import annotations

import gc
import time

from repro.apps.iot.pipeline import iot_typed_dag
from repro.apps.iot.sensors import SensorWorkload
from repro.apps.smarthomes import smart_homes_dag
from repro.bench import MarkerTriggerCost, fused_cost_model, measure_throughput
from repro.bench.reporting import emit_bench_json
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.compiler.inprocess import compile_inprocess
from repro.storm.batching import BatchingOptions
from repro.storm.local import events_to_trace

from conftest import SPOUTS, TASKS_PER_MACHINE

#: CI floor: the batched engine must beat event-at-a-time by at least
#: this factor.  The measured ratio on the full fig6 workload is ~3.5x
#: (see BENCH_batching.json); the floor leaves headroom for noisy
#: shared runners.
SPEEDUP_FLOOR = 1.5

REPEATS = 5


def _time_push(dag, source, sink, events, batched, repeats=REPEATS):
    """Best-of-``repeats`` wall time for one full stream; returns the
    sink events of the last run for the trace-equality check."""
    best = float("inf")
    outputs = None
    for _ in range(repeats):
        pipe = compile_inprocess(dag, batched=batched)
        gc.collect()
        gc.disable()
        t0 = time.perf_counter()
        if batched:
            pipe.push_batch(source, events)
        else:
            push = pipe.push
            for event in events:
                push(source, event)
        elapsed = time.perf_counter() - t0
        gc.enable()
        best = min(best, elapsed)
        outputs = pipe.outputs(sink)
    return best, outputs


def _record(serial_s, batched_s, n_events):
    return {
        "events": n_events,
        "serial_s": round(serial_s, 4),
        "batched_s": round(batched_s, 4),
        "serial_eps": round(n_events / serial_s),
        "batched_eps": round(n_events / batched_s),
        "speedup": round(serial_s / batched_s, 2),
    }


def test_batching_inprocess_fig6(smarthomes_workload, smarthomes_models, benchmark):
    """Figure 6 pipeline, in-process: batched must be >= 1.5x serial
    (measured ~3.5x) with identical canonical sink traces."""
    events = list(smarthomes_workload.events())
    dag = smart_homes_dag(smarthomes_workload.make_database(), smarthomes_models)

    serial_s, serial_out = _time_push(dag, "hub", "SINK", events, batched=False)
    batched_s, batched_out = _time_push(dag, "hub", "SINK", events, batched=True)

    assert events_to_trace(serial_out, False) == events_to_trace(batched_out, False), (
        "batched execution changed the canonical sink trace"
    )
    speedup = serial_s / batched_s
    print(f"\nfig6 in-process: serial {serial_s:.3f}s, batched {batched_s:.3f}s, "
          f"speedup {speedup:.2f}x over {len(events)} events")
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched in-process run only {speedup:.2f}x serial "
        f"(floor {SPEEDUP_FLOOR}x)"
    )

    emit_bench_json("BENCH_batching.json", {
        "inprocess_fig6": _record(serial_s, batched_s, len(events)),
    })
    benchmark.extra_info["speedup"] = round(speedup, 2)

    def kernel():
        pipe = compile_inprocess(dag, batched=True)
        pipe.push_batch("hub", events)
        return pipe

    benchmark.pedantic(kernel, rounds=3, iterations=1)


def test_batching_inprocess_smoke(benchmark):
    """The CI perf gate: a seconds-scale workload (the Section 2
    motivation pipeline) where batched must still be >= 1.5x serial."""
    workload = SensorWorkload(n_sensors=12, duration=300, marker_period=10)
    events = list(workload.events())
    dag = iot_typed_dag(parallelism=2)

    serial_s, serial_out = _time_push(dag, "SENSOR", "SINK", events, batched=False)
    batched_s, batched_out = _time_push(dag, "SENSOR", "SINK", events, batched=True)

    assert events_to_trace(serial_out, False) == events_to_trace(batched_out, False)
    speedup = serial_s / batched_s
    print(f"\nmotivation smoke: serial {serial_s * 1e3:.1f}ms, "
          f"batched {batched_s * 1e3:.1f}ms, speedup {speedup:.2f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched smoke run only {speedup:.2f}x serial (floor {SPEEDUP_FLOOR}x)"
    )

    emit_bench_json("BENCH_batching.json", {
        "inprocess_smoke": _record(serial_s, batched_s, len(events)),
    })

    def kernel():
        pipe = compile_inprocess(dag, batched=True)
        pipe.push_batch("SENSOR", events)
        return pipe

    benchmark.pedantic(kernel, rounds=3, iterations=1)


def _fig6_vertex_costs():
    return {
        "JFM": 30e-6,
        "SORT1": MarkerTriggerCost(1.5e-6, 20e-6),
        "LI": 1e-6,
        "Map": 0.5e-6,
        "SORT2": MarkerTriggerCost(1.5e-6, 20e-6),
        "Avg": 1e-6,
        "Predict": 5e-6,
    }


def test_batching_simulator_fig6(smarthomes_workload, smarthomes_models):
    """Simulated cluster: epoch micro-batching plus typed shuffle
    combiners must not increase the makespan, and the batched schedule
    accounts for every input tuple."""
    machines = 4
    events = smarthomes_workload.events()

    def build():
        dag = smart_homes_dag(
            smarthomes_workload.make_database(),
            smarthomes_models,
            parallelism=machines * TASKS_PER_MACHINE,
        )
        return compile_dag(dag, {"hub": source_from_events(events, SPOUTS)})

    def simulate(batching_for):
        compiled = build()
        batching = batching_for(compiled)
        gc.collect()
        gc.disable()
        t0 = time.perf_counter()
        report = measure_throughput(
            compiled.topology, machines,
            fused_cost_model(_fig6_vertex_costs(), generated=True),
            batching=batching,
        )
        wall = time.perf_counter() - t0
        gc.enable()
        return report, wall

    serial, serial_wall = simulate(lambda compiled: None)
    micro, micro_wall = simulate(
        lambda compiled: BatchingOptions.for_compiled(compiled, combine=False)
    )
    full, full_wall = simulate(
        lambda compiled: BatchingOptions.for_compiled(compiled)
    )

    assert micro.input_all_tuples == serial.input_all_tuples
    assert full.input_all_tuples == serial.input_all_tuples
    assert micro.makespan <= serial.makespan
    assert full.makespan <= serial.makespan

    def row(report, wall):
        return {
            "makespan_s": round(report.makespan, 4),
            "sim_throughput_tps": round(report.throughput()),
            "wall_s": round(wall, 3),
        }

    print(f"\nsimulator fig6 @ {machines} machines: "
          f"serial makespan {serial.makespan:.3f}s, "
          f"micro-batch {micro.makespan:.3f}s, "
          f"+combiners {full.makespan:.3f}s")

    emit_bench_json("BENCH_batching.json", {
        "simulator_fig6": {
            "machines": machines,
            "serial": row(serial, serial_wall),
            "micro_batch": row(micro, micro_wall),
            "micro_batch_and_combiners": row(full, full_wall),
            "makespan_improvement": round(
                serial.makespan / full.makespan, 3
            ),
        },
    })
