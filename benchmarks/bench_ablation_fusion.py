"""Ablation: operator fusion (Section 5's "we fuse MRG and SORT with the
operator that follows them ... to eliminate unnecessary communication
delays").

Runs the Smart-Homes pipeline compiled with and without fusion on the
simulated cluster.  Without fusion every SORT runs as its own bolt, so
every tuple makes extra network hops and pays extra per-tuple framework
overhead; the benchmark reports the throughput ratio.
"""

from __future__ import annotations

import pytest

from repro.apps.smarthomes import smart_homes_dag
from repro.bench import MarkerTriggerCost, fused_cost_model, measure_throughput
from repro.compiler import compile_dag
from repro.compiler.compile import CompilerOptions, source_from_events

from conftest import SPOUTS, TASKS_PER_MACHINE

MACHINES = 4


def vertex_costs():
    return {
        "JFM": 30e-6,
        "SORT1": MarkerTriggerCost(1.5e-6, 20e-6),
        "LI": 1e-6,
        "Map": 0.5e-6,
        "SORT2": MarkerTriggerCost(1.5e-6, 20e-6),
        "Avg": 1e-6,
        "Predict": 5e-6,
    }


def test_ablation_fusion(smarthomes_workload, smarthomes_models, benchmark):
    events = smarthomes_workload.events()

    def build(fusion: bool):
        dag = smart_homes_dag(
            smarthomes_workload.make_database(),
            smarthomes_models,
            parallelism=MACHINES * TASKS_PER_MACHINE,
        )
        compiled = compile_dag(
            dag,
            {"hub": source_from_events(events, SPOUTS)},
            CompilerOptions(fusion=fusion),
        )
        return compiled.topology

    fused_topology = build(True)
    unfused_topology = build(False)
    fused = measure_throughput(
        fused_topology, MACHINES, fused_cost_model(vertex_costs())
    )
    unfused = measure_throughput(
        unfused_topology, MACHINES, fused_cost_model(vertex_costs())
    )

    speedup = fused.throughput() / unfused.throughput()
    print()
    print("Fusion ablation (Smart Homes, 4 machines):")
    print(f"  fused   : {len(fused_topology.components)} components, "
          f"{fused.throughput()/1e6:.3f} M tuples/s")
    print(f"  unfused : {len(unfused_topology.components)} components, "
          f"{unfused.throughput()/1e6:.3f} M tuples/s")
    print(f"  fusion speedup: {speedup:.2f}x")

    assert len(unfused_topology.components) > len(fused_topology.components)
    assert speedup > 1.0, "fusion must not slow the pipeline down"

    # Section 5 says fusion "eliminates unnecessary communication
    # delays": with receiver-side communication CPU (per remote hop),
    # the fusion advantage must widen — unfused stages hop machines.
    comm_fused_model = fused_cost_model(vertex_costs())
    comm_fused_model.remote_cpu = 5e-6
    comm_unfused_model = fused_cost_model(vertex_costs())
    comm_unfused_model.remote_cpu = 5e-6
    comm_fused = measure_throughput(build(True), MACHINES, comm_fused_model)
    comm_unfused = measure_throughput(build(False), MACHINES, comm_unfused_model)
    comm_speedup = comm_fused.throughput() / comm_unfused.throughput()
    print(f"  with 5us/remote-hop communication CPU: fusion speedup "
          f"{comm_speedup:.2f}x")
    assert comm_speedup >= speedup * 0.95, (
        "communication cost must not erode the fusion advantage"
    )

    benchmark.extra_info["fusion_speedup"] = round(speedup, 3)
    benchmark.extra_info["fusion_speedup_with_comm"] = round(comm_speedup, 3)
    benchmark.pedantic(
        lambda: measure_throughput(
            build(True), MACHINES, fused_cost_model(vertex_costs())
        ),
        rounds=1,
        iterations=1,
    )
