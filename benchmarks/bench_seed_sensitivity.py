"""Methodology check: throughput stability across interleaving seeds.

The figure benchmarks report one seeded run per configuration; this
bench quantifies how much that number moves with the seed (shuffle
randomness + network jitter).  A coefficient of variation of a few
percent justifies single-seed sweeps; large variance would mean the
figures need seed averaging.
"""

from __future__ import annotations

import statistics

import pytest

from repro.apps.yahoo.queries import DB_LOOKUP_COST, WINDOW_UPDATE_COST, query4
from repro.bench import fused_cost_model, measure_throughput
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events

from conftest import SPOUTS, TASKS_PER_MACHINE

MACHINES = 4
SEEDS = range(8)


def test_throughput_seed_sensitivity(yahoo_workload, yahoo_events, benchmark):
    dag = query4(
        yahoo_workload.make_database(), parallelism=MACHINES * TASKS_PER_MACHINE
    )
    compiled = compile_dag(
        dag, {"events": source_from_events(yahoo_events, SPOUTS)}
    )
    throughputs = []
    for seed in SEEDS:
        report = measure_throughput(
            compiled.topology, MACHINES,
            fused_cost_model(
                {"FilterMap": DB_LOOKUP_COST, "Count10s": WINDOW_UPDATE_COST}
            ),
            seed=seed,
        )
        throughputs.append(report.throughput())

    mean = statistics.mean(throughputs)
    stdev = statistics.stdev(throughputs)
    cv = stdev / mean
    print()
    print(f"Seed sensitivity (Query IV, {MACHINES} machines, {len(throughputs)} seeds):")
    print(f"  mean {mean/1e6:.3f} M/s, stdev {stdev/1e6:.4f} M/s, CV {100*cv:.2f}%")

    assert cv < 0.05, (
        f"seed-to-seed variation {100*cv:.1f}% is too large for "
        "single-seed figure sweeps"
    )

    benchmark.extra_info["cv_percent"] = round(100 * cv, 3)
    benchmark.pedantic(lambda: throughputs, rounds=1, iterations=1)
