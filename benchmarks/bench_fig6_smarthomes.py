"""Figure 6: Smart-Homes energy prediction throughput, 1–8 machines.

The Figure 5 pipeline is compiled (fusing into the paper's deployment
``JFM | MRG;SORT;LI;Map | MRG;SORT;Avg;Predict | UNQ``) and swept over
machine counts with per-stage parallelism scaled to the cluster.  The
paper reports near-linear scaling to ~0.3 M tuples/s at 8 machines; the
shape assertion checks the scaling factor.
"""

from __future__ import annotations


from repro.apps.smarthomes import smart_homes_dag
from repro.bench import (
    MarkerTriggerCost,
    format_scaling_table,
    fused_cost_model,
    measure_throughput,
    sweep_machines,
)
from repro.bench.reporting import curve_summary, emit_bench_json, scaling_factor
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events

from conftest import MACHINES, SPOUTS, TASKS_PER_MACHINE


def vertex_costs():
    """Fresh per-vertex cost table (see pipeline.VERTEX_COSTS for the
    static entries; prediction fires per aligned marker batch)."""
    return {
        "JFM": 30e-6,
        "SORT1": MarkerTriggerCost(1.5e-6, 20e-6),
        "LI": 1e-6,
        "Map": 0.5e-6,
        "SORT2": MarkerTriggerCost(1.5e-6, 20e-6),
        "Avg": 1e-6,
        "Predict": 5e-6,
    }


def test_fig6_smarthomes(smarthomes_workload, smarthomes_models, benchmark):
    events = smarthomes_workload.events()

    def build(n):
        dag = smart_homes_dag(
            smarthomes_workload.make_database(),
            smarthomes_models,
            parallelism=n * TASKS_PER_MACHINE,
        )
        compiled = compile_dag(dag, {"hub": source_from_events(events, SPOUTS)})
        return compiled.topology

    points = sweep_machines(
        build,
        lambda n: fused_cost_model(vertex_costs(), generated=True),
        machines=MACHINES,
    )
    print()
    print(
        format_scaling_table(
            "Figure 6 / Smart Homes energy prediction: throughput vs machines",
            points,
        )
    )

    assert scaling_factor(points) > 2.5, "pipeline must scale with machines"
    # Monotone non-decreasing up to small jitter.
    for a, b in zip(points, points[1:]):
        assert b.throughput > a.throughput * 0.9

    benchmark.extra_info["mtps"] = [round(p.throughput / 1e6, 4) for p in points]

    emit_bench_json("BENCH_fig6.json", {
        "smarthomes": {"generated": curve_summary(points)},
    })

    def kernel():
        return measure_throughput(build(8), 8, fused_cost_model(vertex_costs()))

    benchmark.pedantic(kernel, rounds=1, iterations=1)
