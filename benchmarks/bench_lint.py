"""Lint wall-clock budget: the full-repo static analysis must stay
cheap enough to run on every CI push.

Times ``analyze_paths`` over the same paths the CI job lints
(``src`` + ``examples``, static rules plus the targeted monoid
cross-confirmation) and over the deliberately buggy corpus, and writes
``BENCH_lint.json``.

Budget: < 10 s for the full repo (in practice well under 1 s).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import analyze_paths
from repro.bench.reporting import emit_bench_json

REPO_ROOT = Path(__file__).resolve().parents[1]

ROUNDS = 3
FULL_REPO_BUDGET_S = 10.0


def _timed(paths, **kwargs):
    """Min-of-ROUNDS wall clock plus the last report."""
    best = float("inf")
    report = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        report = analyze_paths(paths, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_lint_full_repo(benchmark):
    paths = [REPO_ROOT / "src", REPO_ROOT / "examples"]
    n_files = sum(len(list(p.rglob("*.py"))) for p in paths)

    elapsed, report = _timed(paths)
    corpus_elapsed, corpus_report = _timed(
        [REPO_ROOT / "tests" / "analysis_corpus"]
    )

    print()
    print(f"repro lint (static + monoid cross-confirmation, min of {ROUNDS}):")
    print(f"  src + examples   : {elapsed * 1e3:8.1f} ms "
          f"({n_files} files, {len(report.findings)} findings)")
    print(f"  analysis corpus  : {corpus_elapsed * 1e3:8.1f} ms "
          f"({len(corpus_report.findings)} findings)")

    # The repo itself stays clean; the corpus stays dirty.
    assert report.findings == [], report.render("text")
    assert corpus_report.errors(), "the corpus must keep real findings"
    assert elapsed < FULL_REPO_BUDGET_S, (
        f"full-repo lint took {elapsed:.2f}s, budget {FULL_REPO_BUDGET_S}s"
    )

    emit_bench_json(
        "BENCH_lint.json",
        {
            "full_repo": {
                "seconds": round(elapsed, 4),
                "files": n_files,
                "findings": len(report.findings),
                "budget_seconds": FULL_REPO_BUDGET_S,
            },
            "corpus": {
                "seconds": round(corpus_elapsed, 4),
                "findings": len(corpus_report.findings),
            },
        },
    )

    benchmark.extra_info["full_repo_seconds"] = round(elapsed, 4)
    benchmark.extra_info["corpus_seconds"] = round(corpus_elapsed, 4)
