"""Figure 4: Queries I–VI throughput, 1–8 machines, hand-crafted vs.
transduction-generated.

For each query the benchmark sweeps the machine count, building both the
hand-crafted topology and the compiled transduction DAG with per-stage
parallelism scaled to the cluster, and prints the paper's two-curve
table.  Shape assertions (not absolute numbers):

- both implementations scale by well over 2x from 1 to 8 machines;
- generated throughput is within the paper's reported band of the
  hand-crafted one (roughly 0.8x–1.25x; Query I generated slightly
  ahead thanks to the affinity routing, per Section 6).
"""

from __future__ import annotations

import pytest

from repro.apps.yahoo.handcrafted import HANDCRAFTED_BUILDERS
from repro.apps.yahoo.queries import QUERY_BUILDERS
from repro.bench import (
    format_comparison_table,
    fused_cost_model,
    measure_throughput,
    sweep_machines,
)
from repro.bench.reporting import (
    curve_summary,
    emit_bench_json,
    ratios,
    scaling_factor,
)
from repro.compiler import compile_dag
from repro.compiler.compile import CompilerOptions, source_from_events

from conftest import MACHINES, SPOUTS, TASKS_PER_MACHINE

#: Per-vertex CPU cost tables shared by both implementations, so the
#: comparison isolates framework glue (see repro.bench.harness).
#: ``vertex_costs_for`` is a factory: MarkerTriggerCost entries are
#: stateful (per-task aligned-marker dedup), so every simulation gets a
#: fresh table.
from repro.apps.yahoo.queries import (
    CHEAP_COST,
    DB_LOOKUP_COST,
    DB_WRITE_COST,
    FEATURE_COST,
    KMEANS_MARKER_COST,
    WINDOW_UPDATE_COST,
)
from repro.bench import MarkerTriggerCost


def vertex_costs_for(query: str):
    if query == "I":
        return {"Enrich": DB_LOOKUP_COST}
    if query == "II":
        # Every per-key update is persisted to the database.
        return {"KeyByAd": CHEAP_COST, "PersistCount": DB_WRITE_COST}
    if query == "III":
        return {"Locate": DB_LOOKUP_COST, "History": WINDOW_UPDATE_COST}
    if query == "IV":
        return {
            "FilterMap": DB_LOOKUP_COST,
            "Count10s": MarkerTriggerCost(WINDOW_UPDATE_COST, 50e-6),
        }
    if query == "V":
        return {
            "FilterMap": DB_LOOKUP_COST,
            "CountTumbling": MarkerTriggerCost(WINDOW_UPDATE_COST, 50e-6),
        }
    if query == "VI":
        return {
            "Locate": DB_LOOKUP_COST,
            "Features": MarkerTriggerCost(FEATURE_COST, 50e-6),
            "Cluster": MarkerTriggerCost(
                WINDOW_UPDATE_COST, KMEANS_MARKER_COST
            ),
        }
    raise KeyError(query)

#: The generated code's routing edge (Section 6 credits Query I's slight
#: advantage to routing): the compiler's round-robin distributes load
#: perfectly evenly, while the hand-crafted shuffle grouping balances
#: only in expectation — its random imbalance costs a little makespan.
GENERATED_OPTIONS = {}


def run_query_sweep(query: str, workload, events):
    """Both curves of one Figure 4 panel."""
    builder, _ = QUERY_BUILDERS[query]
    hand_builder = HANDCRAFTED_BUILDERS[query]

    def build_generated(n):
        dag = builder(workload.make_database(), parallelism=n * TASKS_PER_MACHINE)
        compiled = compile_dag(
            dag,
            {"events": source_from_events(events, SPOUTS)},
            GENERATED_OPTIONS.get(query, CompilerOptions()),
        )
        return compiled.topology

    def build_handcrafted(n):
        topology, _sink = hand_builder(
            workload.make_database(), events,
            parallelism=n * TASKS_PER_MACHINE, spouts=SPOUTS,
        )
        return topology

    generated = sweep_machines(
        build_generated,
        lambda n: fused_cost_model(vertex_costs_for(query), generated=True),
        machines=MACHINES,
    )
    handcrafted = sweep_machines(
        build_handcrafted,
        lambda n: fused_cost_model(vertex_costs_for(query), generated=False),
        machines=MACHINES,
    )
    return handcrafted, generated


@pytest.mark.parametrize("query", list(QUERY_BUILDERS))
def test_fig4_query(query, yahoo_workload, yahoo_events, benchmark):
    handcrafted, generated = run_query_sweep(query, yahoo_workload, yahoo_events)
    print()
    print(
        format_comparison_table(
            f"Figure 4 / Query {query}: throughput vs machines",
            handcrafted,
            generated,
        )
    )

    # Shape assertions against the paper.
    assert scaling_factor(generated) > 2.0, "generated code must scale"
    assert scaling_factor(handcrafted) > 2.0, "hand-crafted code must scale"
    for ratio in ratios(handcrafted, generated):
        assert 0.70 <= ratio <= 1.35, (
            f"query {query}: generated/hand ratio {ratio:.2f} outside the "
            "paper's comparable-performance band"
        )

    benchmark.extra_info["query"] = query
    benchmark.extra_info["generated_mtps"] = [
        round(p.throughput / 1e6, 4) for p in generated
    ]
    benchmark.extra_info["handcrafted_mtps"] = [
        round(p.throughput / 1e6, 4) for p in handcrafted
    ]

    # Machine-readable emission: each query contributes its key to
    # BENCH_fig4.json so the perf trajectory is tracked across PRs.
    emit_bench_json("BENCH_fig4.json", {
        f"query_{query}": {
            "handcrafted": curve_summary(handcrafted),
            "generated": curve_summary(generated),
        },
    })

    # The timed kernel: one generated-topology run at 8 machines.
    builder, _ = QUERY_BUILDERS[query]

    def kernel():
        dag = builder(
            yahoo_workload.make_database(), parallelism=8 * TASKS_PER_MACHINE
        )
        compiled = compile_dag(
            dag, {"events": source_from_events(yahoo_events, SPOUTS)}
        )
        return measure_throughput(
            compiled.topology, 8, fused_cost_model(vertex_costs_for(query))
        )

    benchmark.pedantic(kernel, rounds=1, iterations=1)
