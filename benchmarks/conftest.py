"""Shared configuration for the experiment benchmarks.

Each benchmark regenerates one table/figure of the paper's evaluation
(see DESIGN.md's experiment index).  The benchmarks run the *simulated*
cluster: throughput numbers are simulated tuples/second, real time is
what pytest-benchmark measures (the cost of regenerating the figure).

Workload sizes here are laptop-scale; the shapes (scaling curves,
generated/hand-crafted ratios, soundness results) are what is compared
against the paper, not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.apps.smarthomes import SmartHomesWorkload, train_predictor
from repro.apps.yahoo.events import YahooWorkload

#: Machine counts of the paper's sweeps (Figures 4 and 6).
MACHINES = (1, 2, 3, 4, 5, 6, 7, 8)

#: Tasks per stage per machine (each VM has 2 CPUs).
TASKS_PER_MACHINE = 2

#: Number of source (spout) partitions feeding every topology.
SPOUTS = 2


@pytest.fixture(scope="session")
def yahoo_workload() -> YahooWorkload:
    return YahooWorkload(
        seconds=5,
        events_per_second=800,
        n_campaigns=20,
        ads_per_campaign=10,
        n_users=200,
        n_locations=8,
        seed=7,
    )


@pytest.fixture(scope="session")
def yahoo_events(yahoo_workload):
    return yahoo_workload.events()


@pytest.fixture(scope="session")
def smarthomes_workload() -> SmartHomesWorkload:
    return SmartHomesWorkload(
        n_buildings=12,
        units_per_building=5,
        plugs_per_unit=4,
        duration=120,
        marker_period=10,
        seed=11,
    )


@pytest.fixture(scope="session")
def smarthomes_models():
    return train_predictor(horizon=120, train_seconds=800, past=60, seed=5)
