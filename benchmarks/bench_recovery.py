"""Checkpointing-overhead + recovery-latency benchmark.

The fault-tolerance layer must be cheap enough to leave on: with
recovery enabled but no faults injected, the simulator draws the exact
same schedule as a plain run (reliable deliveries replace plain
deliveries one-for-one), so the wall-clock delta isolates the cost of
sequence numbering, resequencing, and epoch-aligned snapshots.  This
benchmark runs the Figure 6 Smart-Homes pipeline three ways — plain,
checkpointed-but-fault-free, and faulted-with-recovery — and reports:

- the checkpointing overhead (budget: <=10% wall-clock vs plain);
- recovered-run parity: canonical sink traces equal to the plain run;
- what the recovery machinery did (rollbacks, retransmissions,
  duplicates filtered, events replayed).
"""

from __future__ import annotations

import gc
import statistics
import time

from repro.apps.smarthomes import (
    SmartHomesWorkload,
    smart_homes_dag,
    train_predictor,
)
from repro.bench import MarkerTriggerCost, fused_cost_model
from repro.bench.reporting import emit_bench_json
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.storm import Cluster, Simulator
from repro.storm.faults import demo_plan
from repro.storm.local import events_to_trace
from repro.storm.recovery import RecoveryOptions

from conftest import SPOUTS, TASKS_PER_MACHINE

MACHINES = 4
ROUNDS = 7
SEED = 1

CHECKPOINT_BUDGET = 0.10


def _vertex_costs():
    return {
        "JFM": 30e-6,
        "SORT1": MarkerTriggerCost(1.5e-6, 20e-6),
        "LI": 1e-6,
        "Map": 0.5e-6,
        "SORT2": MarkerTriggerCost(1.5e-6, 20e-6),
        "Avg": 1e-6,
        "Predict": 5e-6,
    }


def _setup():
    """A small-but-real Smart-Homes compile (full pipeline shape)."""
    workload = SmartHomesWorkload(
        n_buildings=6, units_per_building=4, plugs_per_unit=3, duration=60,
    )
    models = train_predictor(horizon=120, train_seconds=400, past=60)
    events = workload.events()

    def build():
        dag = smart_homes_dag(
            workload.make_database(), models,
            parallelism=MACHINES * TASKS_PER_MACHINE,
        )
        return compile_dag(dag, {"hub": source_from_events(events, SPOUTS)})

    return build


def _sink_traces(compiled):
    traces = {}
    for name, bolt in compiled.sinks.items():
        ordered = any(
            kind == "O"
            for (_, dst), kind in compiled.edge_kinds.items()
            if dst == name
        )
        traces[name] = events_to_trace(bolt.aligned_events, ordered)
    return traces


def _one_run(build, faults=None, recovery=None):
    """One timed simulation: (wall seconds, report, sink traces)."""
    compiled = build()
    simulator = Simulator(
        compiled.topology, Cluster(MACHINES, cores_per_machine=2),
        seed=SEED, cost_model=fused_cost_model(_vertex_costs()),
        faults=faults, recovery=recovery,
    )
    gc.disable()
    try:
        start = time.perf_counter()
        report = simulator.run()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, report, _sink_traces(compiled)


def _time_run(build, faults=None, recovery=None):
    """Min-of-ROUNDS wall-clock seconds plus the last run's artifacts."""
    best = float("inf")
    report = traces = None
    for _ in range(ROUNDS):
        elapsed, report, traces = _one_run(build, faults, recovery)
        best = min(best, elapsed)
    return best, report, traces


def test_recovery_overhead(benchmark):
    build = _setup()
    _one_run(build)  # warmup: imports, dict layouts, page cache
    # Measure plain/checkpointed in adjacent pairs and judge the budget
    # on the median per-pair ratio: pairing cancels the clock-frequency
    # drift that sequential min-of-N cannot, and the median discards
    # the pairs where a host-noise spike hit only one side.
    plain = checkpointed = float("inf")
    ratios = []
    plain_report = plain_traces = ck_report = ck_traces = None
    for _ in range(ROUNDS):
        plain_i, plain_report, plain_traces = _one_run(build)
        plain = min(plain, plain_i)
        ck_i, ck_report, ck_traces = _one_run(
            build, recovery=RecoveryOptions(checkpoint_every=1)
        )
        checkpointed = min(checkpointed, ck_i)
        ratios.append(ck_i / plain_i)
    overhead = statistics.median(ratios) - 1.0

    # Scheduling parity: with no faults injected the fault RNG is never
    # drawn and every link stays on the plain delivery path, so the
    # checkpointed run must land on the same simulated outcome —
    # makespan and canonical traces alike.
    assert ck_report.makespan == plain_report.makespan
    assert ck_traces == plain_traces
    assert ck_report.recovery.recoveries == 0
    assert ck_report.recovery.checkpoints_taken > 0

    plan = demo_plan(build().topology, seed=SEED)
    faulted, faulted_report, faulted_traces = _time_run(
        build, faults=plan, recovery=RecoveryOptions(checkpoint_every=1)
    )
    stats = faulted_report.recovery
    assert faulted_traces == plain_traces, "recovered run lost parity"
    assert stats.recoveries >= 1, "demo plan never forced a rollback"

    print()
    print("Recovery overhead (Smart-Homes pipeline, "
          f"{MACHINES} machines, min of {ROUNDS} runs):")
    print(f"  plain                : {plain * 1e3:8.1f} ms")
    print(f"  checkpointed, 0 fail : {checkpointed * 1e3:8.1f} ms "
          f"({100 * overhead:+.1f}%)")
    print(f"  faulted + recovered  : {faulted * 1e3:8.1f} ms "
          f"(recoveries={stats.recoveries}, "
          f"replayed={stats.replayed_events})")

    assert overhead <= CHECKPOINT_BUDGET, (
        f"checkpointing overhead {100 * overhead:.1f}% exceeds "
        f"{100 * CHECKPOINT_BUDGET:.0f}%"
    )

    benchmark.extra_info["checkpoint_overhead_percent"] = round(
        100 * overhead, 2
    )
    emit_bench_json("BENCH_recovery.json", {
        "recovery": {
            "workload": "smarthomes-small",
            "machines": MACHINES,
            "rounds": ROUNDS,
            "plain_seconds": round(plain, 6),
            "checkpointed_seconds": round(checkpointed, 6),
            "checkpoint_overhead_percent": round(100 * overhead, 2),
            "budget_percent": 100 * CHECKPOINT_BUDGET,
            "faulted_recovered_seconds": round(faulted, 6),
            "recovered_parity": faulted_traces == plain_traces,
            "checkpoints_taken": ck_report.recovery.checkpoints_taken,
            "faulted_stats": stats.to_dict(),
        },
    })

    benchmark.pedantic(
        lambda: _time_run(build, recovery=RecoveryOptions()),
        rounds=1, iterations=1,
    )
