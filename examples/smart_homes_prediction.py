"""The Smart-Homes power-prediction case study (Figure 5, DEBS'14).

Trains a REPTree regression model per device type, builds the Figure 5
pipeline (JFM -> SORT -> LI -> Map -> SORT -> Avg -> Predict), shows the
deployment the compiler derives (the fused form at the bottom of
Figure 5), and prints a sample of the live 2-minute-ahead power
forecasts the pipeline emits.

Run:  python examples/smart_homes_prediction.py
"""

from repro.apps.smarthomes import (
    SmartHomesWorkload,
    smart_homes_dag,
    train_predictor,
)
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import evaluate_dag, render_dag
from repro.operators.base import KV
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


def main():
    workload = SmartHomesWorkload(
        n_buildings=3, units_per_building=3, plugs_per_unit=2, duration=90,
    )
    events = workload.events()
    n_readings = sum(1 for e in events if isinstance(e, KV))
    print(f"Plug stream: {n_readings} measurements from "
          f"{len(workload.plug_keys())} plugs over {workload.duration}s")

    print("\nTraining REPTree predictors (one per device type)...")
    models = train_predictor(horizon=120, train_seconds=900, past=60)
    for device, tree in sorted(models.items()):
        print(f"  {device:<12} tree: {tree.n_nodes()} nodes, depth {tree.depth()}")

    dag = smart_homes_dag(workload.make_database(), models, parallelism=2)
    print("\nThe Figure 5 pipeline:")
    print(render_dag(dag))

    compiled = compile_dag(dag, {"hub": source_from_events(events, 2)})
    print("\nCompiled deployment (fusion, as in Figure 5 bottom):")
    for name, spec in compiled.topology.components.items():
        kind = "spout" if spec.is_spout else "bolt"
        print(f"  {kind:<5} {name:<22} x{spec.parallelism}")

    denotation = evaluate_dag(dag, {"hub": events}).sink_trace("SINK", True)
    LocalRunner(compiled.topology, seed=0).run()
    got = events_to_trace(compiled.sinks["SINK"].aligned_events, True)
    print(f"\ncompiled run equals denotation: {got == denotation}")

    predictions = [
        (key, value)
        for block in denotation.closed_blocks()
        for key, value in block.pairs()
    ]
    print(f"\n{len(predictions)} forecasts emitted; the last few:")
    for device, (ts, forecast) in predictions[-6:]:
        print(f"  t={ts:>3}s {device:<12} next-2-min consumption ~ "
              f"{forecast / 1000:.1f} kWs")


if __name__ == "__main__":
    main()
