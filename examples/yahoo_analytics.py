"""The Yahoo Streaming Benchmark pipeline (Query IV, Figure 3).

Generates the advertising event stream, builds the Figure 3 transduction
DAG (filter view events, look up each ad's campaign in the database,
count views per campaign over a sliding 10-second window), compiles it,
verifies the distributed execution against the denotational semantics,
and sweeps the simulated cluster from 1 to 8 machines.

Run:  python examples/yahoo_analytics.py
"""

from repro.apps.yahoo.events import YahooWorkload
from repro.apps.yahoo.queries import DB_LOOKUP_COST, WINDOW_UPDATE_COST, query4
from repro.bench import format_scaling_table, fused_cost_model, sweep_machines
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import evaluate_dag, render_dag
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


def main():
    workload = YahooWorkload(
        seconds=5, events_per_second=500, n_campaigns=10, ads_per_campaign=10,
    )
    events = workload.events()
    db = workload.make_database()

    dag = query4(db, parallelism=2)
    print("Query IV (the Figure 3 pipeline):")
    print(render_dag(dag))

    # Correctness: compiled execution equals the denotation.
    denotation = evaluate_dag(dag, {"events": events}).sink_trace("SINK", False)
    compiled = compile_dag(dag, {"events": source_from_events(events, 2)})
    LocalRunner(compiled.topology, seed=1).run()
    got = events_to_trace(compiled.sinks["SINK"].aligned_events, False)
    print(f"\ncompiled run equals denotation: {got == denotation}")

    last = denotation.closed_blocks()[-1]
    top = sorted(last.pairs(), key=lambda kv: -kv[1])[:5]
    print("\nTop campaigns by views in the final 10s window:")
    for campaign, views in top:
        print(f"  campaign {campaign}: {views} views")

    # Performance: scale the simulated cluster.
    def build(n):
        fresh = query4(workload.make_database(), parallelism=2 * n)
        return compile_dag(
            fresh, {"events": source_from_events(events, 2)}
        ).topology

    points = sweep_machines(
        build,
        lambda n: fused_cost_model(
            {"FilterMap": DB_LOOKUP_COST, "Count10s": WINDOW_UPDATE_COST}
        ),
        machines=(1, 2, 4, 8),
    )
    print()
    print(format_scaling_table("Simulated scaling (Query IV):", points))


if __name__ == "__main__":
    main()
