"""Quickstart: the Figure 2 program, end to end.

Builds the paper's extended example — filter out odd keys, then sum the
values per key per second — as a typed transduction DAG, type-checks and
compiles it (``dag.getStormTopology()`` in the paper), and runs it on
the in-process engine under several interleavings to show the outputs
are identical every time.

Run:  python examples/quickstart.py
"""

from repro import (
    KV,
    Marker,
    TraceTypeError,
    TransductionDAG,
    compile_dag,
    evaluate_dag,
    source_from_events,
    unordered_type,
)
from repro.dag import render_dag, typecheck_dag
from repro.operators import OpKeyedUnordered, OpStateless
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


# --- Processing node 1: filter out the odd keys (OpStateless) ----------
class FilterEven(OpStateless):
    """Table 1's stateless template: emit only even-keyed pairs."""

    name = "filterOp"

    def on_item(self, key, value, emit):
        if key % 2 == 0:
            emit(key, value)


# --- Processing node 2: sum per time unit (OpKeyedUnordered) -----------
class SumPerSecond(OpKeyedUnordered):
    """Table 1's keyed-unordered template, exactly Figure 2's ``sumOp``:
    the between-marker values of each key are folded through the
    commutative monoid (Float, 0.0, +); each marker emits the sum."""

    name = "sumOp"

    def fold_in(self, key, value):
        return value

    def identity(self):
        return 0.0

    def combine(self, x, y):
        return x + y

    def init(self):
        return float("nan")

    def update_state(self, old_state, agg):
        return agg

    def on_marker(self, new_state, key, m, emit):
        emit(key, (new_state, m.timestamp - 1))


def main():
    # Input: U(Int, Float) — unordered key-value pairs between markers.
    stream_type = unordered_type("Int", "Float")

    dag = TransductionDAG("quickstart")
    source = dag.add_source("source", output_type=stream_type)
    filter_op = dag.add_op(
        FilterEven(), parallelism=2, upstream=[source], edge_types=[stream_type]
    )
    sum_op = dag.add_op(
        SumPerSecond(), parallelism=3, upstream=[filter_op],
        edge_types=[stream_type],
    )
    dag.add_sink("printer", upstream=sum_op, input_type=stream_type)

    typecheck_dag(dag)  # the type-consistency check of Figure 2
    print("The transduction DAG:")
    print(render_dag(dag))

    # A small input stream: two one-second blocks.
    events = [
        KV(1, 10.0), KV(2, 3.0), KV(4, 1.5), KV(2, 2.0), Marker(1),
        KV(2, 7.0), KV(3, 9.0), KV(4, 0.5), Marker(2),
    ]

    # Denotational semantics: evaluate the DAG as a function on traces.
    denotation = evaluate_dag(dag, {"source": events}).sink_trace(
        "printer", ordered=False
    )
    print("\nDenotation (trace delivered to the printer):")
    for block in denotation.closed_blocks():
        print(f"  block ending #{block.closing_marker}: {block.pairs()}")

    # Compile to a topology and run under different interleavings.
    compiled = compile_dag(dag, {"source": source_from_events(events, 2)})
    print("\nCompiled components:", list(compiled.topology.components))
    for seed in range(3):
        LocalRunner(compiled.topology, seed=seed).run()
        got = events_to_trace(compiled.sinks["printer"].aligned_events, False)
        status = "matches the denotation" if got == denotation else "DIFFERS!"
        print(f"  run with interleaving seed {seed}: {status}")

    # The type discipline at work: an order-sensitive operator on an
    # unordered edge is rejected at compile time.
    from repro.operators import OpKeyedOrdered

    class Cumulative(OpKeyedOrdered):
        def init(self):
            return 0.0

        def on_item(self, state, key, value, emit):
            emit(key, state + value)
            return state + value

    bad = TransductionDAG("bad")
    src = bad.add_source("source", output_type=stream_type)
    cum = bad.add_op(Cumulative(), upstream=[src], edge_types=[stream_type])
    bad.add_sink("printer", upstream=cum)
    try:
        typecheck_dag(bad)
    except TraceTypeError as error:
        print(f"\nType checker rejects the unsound DAG:\n  {error}")


if __name__ == "__main__":
    main()
