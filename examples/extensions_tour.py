"""A tour of the implemented extension points from the paper's
conclusion and related-work sections.

1. The specialized sliding-window template (conclusion): amortized-O(1)
   two-stacks window maintenance for any monoid — shown on a
   non-invertible aggregation (per-key sliding max).
2. Generalized punctuations (Section 7): key-scoped watermarks that let
   keys progress independently — impossible with global markers.
3. Kahn process networks (Example 3.3): the data-trace model restricted
   to independent linear channels, with the deterministic merge of
   Example 3.7 as a KPN whose output is scheduling-invariant.

Run:  python examples/extensions_tour.py
"""

import random
import time

from repro.operators.base import KV, Marker
from repro.operators.sliding import sliding_max, sliding_window
from repro.traces.punctuation import Punctuation, PunctuationReorder
from repro.transductions.kpn import merge_network


def tour_sliding_window():
    print("1. Specialized sliding-window template")
    print("   per-key max over the last 3 marker periods:")
    op = sliding_max(3)
    stream = [
        KV("cpu", 71), KV("mem", 48), Marker(1),
        KV("cpu", 95), Marker(2),
        KV("mem", 60), Marker(3),
        Marker(4), Marker(5),
    ]
    for event in op.run(stream):
        print(f"     {event}")

    # The efficiency point: two-stacks vs refolding on a long window.
    rng = random.Random(0)
    stream = []
    for block in range(1, 500):
        stream.append(KV("k", rng.random()))
        stream.append(Marker(block))
    timings = {}
    for algorithm in ("two-stacks", "recompute"):
        op = sliding_window(
            200, lambda k, v: v, -1.0, max, algorithm=algorithm
        )
        started = time.perf_counter()
        op.run(stream)
        timings[algorithm] = time.perf_counter() - started
    speedup = timings["recompute"] / timings["two-stacks"]
    print(f"   window=200, 500 markers: two-stacks {speedup:.1f}x faster "
          "than refolding\n")


def tour_punctuations():
    print("2. Generalized (key-scoped) punctuations")
    op = PunctuationReorder()
    stream = [
        KV("sensorA", ("a-late", 7)),
        KV("sensorA", ("a-early", 2)),
        KV("sensorB", ("b-item", 1)),
        Punctuation("sensorA", 10),   # sensor A is complete below t=10
        # sensor B's punctuation never arrives — but A progressed anyway.
    ]
    for event in op.run(stream):
        print(f"     {event}")
    print("   sensor A's items released in timestamp order; sensor B's")
    print("   pending item waits without blocking A (no global marker!)\n")


def tour_kpn():
    print("3. Kahn process networks (Example 3.3 / 3.7)")
    results = set()
    for seed in range(5):
        outputs = merge_network().run(
            {"in0": ["x1", "x2", "x3"], "in1": ["y1", "y2"]}, seed=seed
        )
        results.add(tuple(outputs["out"]))
    (merged,) = results
    print(f"   deterministic merge over 5 random schedules: {merged}")
    print("   (one distinct result: Kahn determinism = the trace view)")


if __name__ == "__main__":
    tour_sliding_window()
    tour_punctuations()
    tour_kpn()
