"""The formal layer: data traces, pomsets, and consistency (Section 3).

Recreates the paper's running examples directly against the trace
algebra: the Example 3.1/3.2 trace type and its visualization, trace
equivalence and prefix order, the streaming-max transduction of
Example 3.9, and Definition 3.5 consistency checking — including
catching an inconsistent operator red-handed.

Run:  python examples/trace_algebra.py
"""

from repro.traces import (
    DataTrace,
    DataTraceType,
    DependenceRelation,
    Item,
    MARKER,
    Pomset,
    marker,
)
from repro.traces.tags import DataType, Tag, nat_validator
from repro.traces.trace_type import sequence_type
from repro.transductions import ConsistencyChecker
from repro.transductions.examples import StreamingMax
from repro.transductions.string_transduction import StringTransduction

M = Tag("M")


def example_type() -> DataTraceType:
    """Example 3.1: measurements M (self-independent) + markers #."""
    data_type = DataType({M: nat_validator, MARKER: nat_validator})
    dependence = DependenceRelation.with_marker(data_tags_self_dependent=False)
    return DataTraceType(data_type, dependence, name="Ex31")


def main():
    X = example_type()

    # Example 3.2: the trace of (M,5)(M,7) # (M,9)(M,8)(M,9) # (M,6).
    sequence = [
        Item(M, 5), Item(M, 7), marker(1),
        Item(M, 9), Item(M, 8), Item(M, 9), marker(2),
        Item(M, 6),
    ]
    pomset = Pomset(X, sequence)
    print("Example 3.2 trace, as a partial order (Foata steps):")
    print(" ", pomset.render())
    print(f"  width (max concurrency): {pomset.width()}")
    print(f"  distinct linearizations: {pomset.count_linearizations()}")

    # Equivalence: commuting measurements within a block.
    t1 = DataTrace(X, [Item(M, 5), Item(M, 5), Item(M, 8), marker(1)])
    t2 = DataTrace(X, [Item(M, 8), Item(M, 5), Item(M, 5), marker(1)])
    t3 = DataTrace(X, [Item(M, 8), marker(1), Item(M, 5), Item(M, 5)])
    print("\nTrace equivalence (Example 3.1):")
    print(f"  (M,5)(M,5)(M,8)# == (M,8)(M,5)(M,5)#  ->  {t1 == t2}")
    print(f"  (M,5)(M,5)(M,8)# == (M,8)#(M,5)(M,5)  ->  {t1 == t3}")

    # Prefix order and residuals.
    prefix = DataTrace(X, [Item(M, 8)])
    print(f"  [(M,8)] <= [(M,5)(M,5)(M,8)#]          ->  "
          f"{prefix.is_prefix_of(t1)}")
    print(f"  residual: {prefix.residual_in(t1)}")

    # Example 3.9: streaming max, and its consistency.
    OUT = sequence_type(int, tag_name="out")

    class ItemStreamingMax(StringTransduction):
        def initial(self):
            return {"max": None}

        def step(self, state, item):
            if item.is_marker():
                return () if state["max"] is None else (
                    Item(Tag("out"), state["max"]),
                )
            if state["max"] is None or item.value > state["max"]:
                state["max"] = item.value
            return ()

    class LeakFirst(StringTransduction):
        """Emits the first measurement it happens to see — depends on the
        arbitrary block order, hence inconsistent."""

        def initial(self):
            return {"emitted": False}

        def step(self, state, item):
            if item.is_marker() or state["emitted"]:
                return ()
            state["emitted"] = True
            return (Item(Tag("out"), item.value),)

    checker = ConsistencyChecker(X, OUT, seed=1)
    inputs = [[Item(M, 5), Item(M, 3), Item(M, 8), marker(1), Item(M, 9), marker(2)]]
    print("\nDefinition 3.5 consistency checking:")
    verdict = checker.check(ItemStreamingMax(), inputs, shuffles=20)
    print(f"  streaming max (Example 3.9): "
          f"{'consistent on all sampled shuffles' if verdict is None else 'VIOLATION'}")
    violation = checker.check(LeakFirst(), inputs, shuffles=20)
    print(f"  leak-first-item operator   : "
          f"{'no violation found' if violation is None else 'violation found'}")
    if violation is not None:
        print(f"    input A  = {violation.input_a}")
        print(f"    input B  = {violation.input_b}")
        print(f"    output A = {violation.output_a}")
        print(f"    output B = {violation.output_b}")


if __name__ == "__main__":
    main()
