"""The Section 2 story: why naive parallelization breaks, and how
data-trace types fix it.

A sensor hub stream (serialized measurements with missing data points)
is deserialized by ``Map``, gap-filled by linear interpolation ``LI``,
and summarized by ``Avg``.  ``Map`` is the bottleneck, so we replicate
it — first the naive Storm way (shuffle grouping, no types), then the
typed way (``SORT`` repairs the order, the compiler deploys soundly).

Run:  python examples/iot_interpolation.py
"""

from repro.apps.iot import SensorWorkload, build_naive_topology, iot_typed_dag
from repro.compiler import compile_dag
from repro.compiler.compile import source_from_events
from repro.dag import evaluate_dag, render_dag
from repro.operators.base import KV
from repro.storm import LocalRunner
from repro.storm.local import events_to_trace


def main():
    workload = SensorWorkload(n_sensors=3, duration=40, marker_period=10)
    events = workload.events()
    n_readings = sum(1 for e in events if isinstance(e, KV))
    print(f"Sensor stream: {n_readings} measurements from "
          f"{workload.n_sensors} sensors over {workload.duration}s "
          f"(~{int(100 * workload.drop_probability)}% of points missing)\n")

    # ------------------------------------------------------------------
    # Naive: Map x2 with shuffle grouping, order-sensitive LI downstream.
    # ------------------------------------------------------------------
    print("NAIVE deployment (Map x2, shuffle grouping, no types):")
    outputs = set()
    for seed in range(5):
        topology, _sink = build_naive_topology(events, map_parallelism=2)
        report = LocalRunner(topology, seed=seed).run()
        averages = tuple(sorted(
            (e.key, e.value) for e in report.sink_events["SINK"]
            if isinstance(e, KV)
        ))
        outputs.add(averages)
        print(f"  seed {seed}: output fingerprint {hash(averages) & 0xFFFF:04x}")
    print(f"  -> {len(outputs)} distinct outputs across 5 interleavings "
          "(nondeterministic, not reproducible)\n")

    # ------------------------------------------------------------------
    # Typed: the same pipeline with SORT, compiled by the framework.
    # ------------------------------------------------------------------
    dag = iot_typed_dag(parallelism=2)
    print("TYPED pipeline (Sort-LI fix of Section 2):")
    print(render_dag(dag))
    denotation = evaluate_dag(dag, {"SENSOR": events}).sink_trace("SINK", False)
    compiled = compile_dag(dag, {"SENSOR": source_from_events(events, 1)})
    outputs = set()
    for seed in range(5):
        LocalRunner(compiled.topology, seed=seed).run()
        outputs.add(events_to_trace(compiled.sinks["SINK"].aligned_events, False))
    print(f"\n  -> {len(outputs)} distinct output trace across 5 interleavings")
    print(f"  -> equals the denotational semantics: {outputs == {denotation}}")

    final_block = denotation.closed_blocks()[-1]
    print("\nFinal per-sensor running averages (typed pipeline):")
    for sensor, average in sorted(final_block.pairs()):
        print(f"  sensor {sensor}: {average:.3f}")


if __name__ == "__main__":
    main()
