"""Legacy setup shim.

The modern metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments without the ``wheel``
package (PEP 660 editable installs require it; the legacy code path
does not).
"""

from setuptools import setup

setup()
